"""The TCP connection endpoint.

One :class:`TCPConnection` is one endpoint (the equivalent of a BSD
socket + tcpcb).  It owns:

* the sender half: send buffer, ``snd_una``/``snd_nxt``/``snd_max``,
  the coarse (tick-granularity) retransmit machinery driven by the
  host's 500 ms slow timer, per-segment fine-grained timestamps (the
  clock readings Vegas' §3.1 mechanism relies on), and a pluggable
  :class:`~repro.core.base.CongestionControl` policy;
* the receiver half (:class:`~repro.tcp.receiver.ReceiverHalf`):
  cumulative/duplicate/delayed ACK generation;
* a small connection state machine (simplified three-way handshake and
  FIN exchange — no TIME_WAIT, no RST).

Everything observable about the connection is recorded through the
attached :class:`~repro.trace.tracer.ConnectionTracer`, which is what
the paper's graphing tools consume.

Hot state lives in a :class:`~repro.tcp.flatstate.ConnStateStore`
slot, not in instance attributes: sequence variables, timer
countdowns, RTT/CAM accumulators and the send-time heap index are
columns of a packed struct-of-arrays store shared by every connection
of a simulator, which is what lets the host protocol's periodic scans
and a future compiled dispatch path walk flat memory.  The accessor
properties below keep the public attribute API (``conn.snd_una``,
``conn.t_rexmt``...) unchanged; hot methods hoist the store columns
into locals instead.  Under ``REPRO_ENGINE_SLOWPATH`` each connection
gets a private store, restoring the seed's per-object state layout
for the bit-identity differential.
"""

from __future__ import annotations

import enum
import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.checks import runtime as checks_runtime
from repro.errors import ProtocolError
from repro.obs import runtime as obs_runtime
from repro.sim import watchdog as watchdog_runtime
from repro.metrics.flowstats import FlowStats
from repro.net.addresses import FlowId
from repro.net.packet import Packet
from repro.tcp import constants as C
from repro.tcp.buffers import SendBuffer
from repro.tcp.flatstate import ConnStateStore, store_for
from repro.tcp.receiver import AckAction, ReceiverHalf
from repro.tcp.rtt import CoarseRttEstimator, FineRttEstimator
from repro.tcp.sack import SackScoreboard
from repro.tcp.segment import (
    FLAG_ACK,
    FLAG_ECE,
    FLAG_FIN,
    FLAG_SYN,
    MAX_SACK_BLOCKS,
    SACK_BLOCK_BYTES,
    TCPSegment,
)
from repro.tcp.constants import HEADER_BYTES
from repro.trace.records import Kind
from repro.trace.tracer import NULL_TRACER, ConnectionTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import CongestionControl
    from repro.tcp.protocol import TCPProtocol

_heappush = heapq.heappush
_heappop = heapq.heappop


class State(enum.Enum):
    CLOSED = 0
    SYN_SENT = 1
    SYN_RCVD = 2
    ESTABLISHED = 3
    CLOSING = 4      # FIN exchange in progress (either direction)


class TCPConnection:
    """One endpoint of a TCP connection with pluggable congestion control."""

    def __init__(self, protocol: "TCPProtocol", flow: FlowId,
                 cc: "CongestionControl",
                 mss: int = C.DEFAULT_MSS,
                 sndbuf: int = C.DEFAULT_SOCKBUF,
                 rcvbuf: int = C.DEFAULT_SOCKBUF,
                 tracer: Optional[ConnectionTracer] = None,
                 nagle: bool = True,
                 delayed_acks: bool = True,
                 sack: bool = False,
                 ecn: bool = False):
        self.protocol = protocol
        self._host = protocol.host
        self._send_packet = protocol.host.send_packet
        # Egress route cache for _transmit, resolved on first use:
        # routes are static once the topology is built, so the
        # per-segment forwarding lookup collapses to one bound call.
        self._route = None
        sim = protocol.sim
        self.sim = sim
        self.flow = flow
        self.mss = mss
        self.nagle = nagle
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = FlowStats()

        # Flat hot-state slot.  Fast path: the simulator-wide shared
        # store, so protocol timer scans walk packed arrays.  Slow path
        # (REPRO_ENGINE_SLOWPATH): a private store per connection —
        # state is per-object again, as in the seed, and the protocol
        # falls back to the per-connection method scan.
        if getattr(sim, "_fast", True):
            st = store_for(sim)
        else:
            st = ConnStateStore()
        self._st = st
        self._slot = slot = st.alloc()
        self._state = State.CLOSED  # state_code default is CLOSED

        # --- Sender half -------------------------------------------------
        self.iss = 0
        self.sendbuf = SendBuffer(sndbuf, start_seq=1)
        self.peer_wnd_seen = False
        self.coarse_rtt = CoarseRttEstimator(store=st, slot=slot)
        self.fine_rtt = FineRttEstimator(store=st, slot=slot)
        self.fin_pending = False
        self.fin_sent = False
        self.fin_end: Optional[int] = None
        self.fin_acked = False
        self.aborted = False
        # Optional transmission pacing (used by the experimental
        # rate-controlled slow start of §3.3's future work).
        self._pace_event = None
        # Selective acknowledgements (§6 extension): when enabled, this
        # endpoint *sends* SACK blocks for its out-of-order reassembly
        # queue and keeps a scoreboard of blocks the peer reports.
        self.sack_enabled = sack
        self.sack_board = SackScoreboard()
        # Explicit congestion notification (RFC 3168, simplified): data
        # packets are sent ECN-capable; a congestion mark seen by the
        # receiver is echoed on its next ACKs until new data confirms
        # the sender reacted.
        self.ecn_enabled = ecn
        self._ece_pending = False
        self.ecn_echoes_received = 0

        # --- Receiver half ------------------------------------------------
        self.recv = ReceiverHalf(rcvbuf, delayed_acks=delayed_acks,
                                 store=st, slot=slot)
        self.peer_fin = False

        # --- Application callbacks ----------------------------------------
        self.on_established: Optional[Callable[["TCPConnection"], None]] = None
        self.on_data: Optional[Callable[["TCPConnection", int], None]] = None
        self.on_send_space: Optional[Callable[["TCPConnection"], None]] = None
        self.on_peer_fin: Optional[Callable[["TCPConnection"], None]] = None
        self.on_closed: Optional[Callable[["TCPConnection"], None]] = None

        self.cc = cc
        cc.attach(self)
        # A controller that never overrides pacing_rate can never pace
        # (the base method returns None unconditionally), so the
        # per-segment pacing probes in output() are skipped outright.
        from repro.core.base import CongestionControl as _base_cc
        self._paced = type(cc).pacing_rate is not _base_cc.pacing_rate

        # Invariant checking (repro.checks): bound at construction so
        # every hook below is one `is not None` test when inactive.
        self._checker = checks_runtime.active()
        if self._checker is not None:
            self._checker.register_connection(self)
        # Liveness watchdog (repro.sim.watchdog): registration only —
        # the watchdog polls this connection from the engine loop via
        # the liveness_* protocol below, so inactive runs pay nothing.
        _watchdog = watchdog_runtime.active()
        if _watchdog is not None:
            _watchdog.register_connection(self)
        # Telemetry gauges (repro.obs): registration only; the sampler
        # reads cwnd/flight/mode from the engine loop.
        _obs = obs_runtime.active()
        if _obs is not None:
            _obs.register_connection(self)

    # ------------------------------------------------------------------
    # Flat-state accessors (hot methods hoist the columns instead)
    # ------------------------------------------------------------------
    @property
    def state(self) -> State:
        return self._state

    @state.setter
    def state(self, value: State) -> None:
        self._state = value
        self._st.state_code[self._slot] = value.value

    @property
    def snd_una(self) -> int:
        return self._st.snd_una[self._slot]

    @snd_una.setter
    def snd_una(self, value: int) -> None:
        self._st.snd_una[self._slot] = value

    @property
    def snd_nxt(self) -> int:
        return self._st.snd_nxt[self._slot]

    @snd_nxt.setter
    def snd_nxt(self, value: int) -> None:
        self._st.snd_nxt[self._slot] = value

    @property
    def snd_max(self) -> int:
        """Highest end-sequence ever sent."""
        return self._st.snd_max[self._slot]

    @snd_max.setter
    def snd_max(self, value: int) -> None:
        self._st.snd_max[self._slot] = value

    @property
    def peer_wnd(self) -> int:
        return self._st.peer_wnd[self._slot]

    @peer_wnd.setter
    def peer_wnd(self, value: int) -> None:
        self._st.peer_wnd[self._slot] = value

    @property
    def dupacks(self) -> int:
        return self._st.dupacks[self._slot]

    @dupacks.setter
    def dupacks(self, value: int) -> None:
        self._st.dupacks[self._slot] = value

    @property
    def rexmt_shift(self) -> int:
        return self._st.rexmt_shift[self._slot]

    @rexmt_shift.setter
    def rexmt_shift(self, value: int) -> None:
        self._st.rexmt_shift[self._slot] = value

    @property
    def consecutive_timeouts(self) -> int:
        """Consecutive coarse timeouts without forward progress; the
        connection aborts when this exceeds MAX_REXMT_SHIFT, like
        BSD's dropwithreset after 12 fruitless retransmissions."""
        return self._st.consec_timeouts[self._slot]

    @consecutive_timeouts.setter
    def consecutive_timeouts(self, value: int) -> None:
        self._st.consec_timeouts[self._slot] = value

    @property
    def t_rexmt(self) -> Optional[int]:
        """Ticks until coarse timeout (``None`` when unarmed)."""
        v = self._st.t_rexmt[self._slot]
        return None if v < 0 else v

    @t_rexmt.setter
    def t_rexmt(self, value: Optional[int]) -> None:
        self._st.t_rexmt[self._slot] = -1 if value is None else value

    @property
    def _timing_seq(self) -> Optional[int]:
        """Coarse-timed sequence number (one at a time; Karn-guarded)."""
        v = self._st.timing_seq[self._slot]
        return None if v < 0 else v

    @_timing_seq.setter
    def _timing_seq(self, value: Optional[int]) -> None:
        self._st.timing_seq[self._slot] = -1 if value is None else value

    @property
    def _timing_ticks(self) -> int:
        return self._st.timing_ticks[self._slot]

    @_timing_ticks.setter
    def _timing_ticks(self, value: int) -> None:
        self._st.timing_ticks[self._slot] = value

    @property
    def _persist_shift(self) -> int:
        return self._st.persist_shift[self._slot]

    @_persist_shift.setter
    def _persist_shift(self, value: int) -> None:
        self._st.persist_shift[self._slot] = value

    @property
    def _persist_countdown(self) -> int:
        return self._st.persist_countdown[self._slot]

    @_persist_countdown.setter
    def _persist_countdown(self, value: int) -> None:
        self._st.persist_countdown[self._slot] = value

    @property
    def _pace_next_time(self) -> float:
        return self._st.pace_next[self._slot]

    @_pace_next_time.setter
    def _pace_next_time(self, value: float) -> None:
        self._st.pace_next[self._slot] = value

    @property
    def _send_times(self) -> Dict[int, float]:
        """Fine per-segment clocks: end_seq -> last transmit time."""
        return self._st.send_times[self._slot]

    @_send_times.setter
    def _send_times(self, value: Dict[int, float]) -> None:
        self._st.send_times[self._slot] = value

    @property
    def _ends_heap(self) -> List[int]:
        """Min-heap over exactly ``_send_times``'s keys, so the
        smallest outstanding end_seq is O(1) and purging on ACK is
        O(log n) per removed entry instead of a full-dict scan."""
        return self._st.ends_heap[self._slot]

    @_ends_heap.setter
    def _ends_heap(self, value: List[int]) -> None:
        self._st.ends_heap[self._slot] = value

    @property
    def _ambiguous(self) -> set:
        """End_seqs retransmitted (Karn)."""
        return self._st.ambiguous[self._slot]

    @_ambiguous.setter
    def _ambiguous(self, value: set) -> None:
        self._st.ambiguous[self._slot] = value

    @property
    def _probe_ends(self) -> set:
        """Persist-probe end_seqs, excluded from CC measurements."""
        return self._st.probe_ends[self._slot]

    @_probe_ends.setter
    def _probe_ends(self, value: set) -> None:
        self._st.probe_ends[self._slot] = value

    # ------------------------------------------------------------------
    # Convenience properties
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def is_closed(self) -> bool:
        return self._state is State.CLOSED and self.stats.close_time is not None

    def flight_size(self) -> int:
        """Bytes sent but not yet acknowledged."""
        st = self._st
        i = self._slot
        return st.snd_nxt[i] - st.snd_una[i]

    @property
    def send_window(self) -> int:
        """min(cwnd, peer advertised window), the paper's send window."""
        return min(self.cc.cwnd, self._st.peer_wnd[self._slot])

    def unsent_bytes(self) -> int:
        return self.sendbuf.queued_end - self._st.snd_nxt[self._slot]

    # ------------------------------------------------------------------
    # Liveness protocol (consumed by repro.sim.watchdog)
    # ------------------------------------------------------------------
    def liveness_progress(self) -> int:
        """Monotone counter that moves whenever this endpoint advances.

        Covers both halves: cumulative ACKs received by the sender
        (``snd_una``) and in-order bytes accepted by the receiver
        (``rcv_nxt``).  Retransmissions that are never acknowledged do
        *not* move it — that is exactly the stall mode the watchdog
        exists to catch.
        """
        return self.snd_una + self.recv.rcv_nxt

    def has_unfinished_work(self) -> bool:
        """True while this endpoint still owes the network something.

        An aborted connection counts as unfinished forever: whatever it
        was carrying never completed, which is a liveness failure, not
        a finished transfer.
        """
        if self.aborted:
            return True
        if self._state is State.CLOSED:
            return False
        if self.snd_nxt > self.snd_una or self.unsent_bytes() > 0:
            return True
        return (self.fin_pending or self.fin_sent) and not self.fin_acked

    def liveness_snapshot(self) -> Dict[str, object]:
        """Diagnostic state for a :class:`~repro.errors.SimulationStalled`."""
        return {
            "flow": str(self.flow),
            "state": self._state.name,
            "snd_una": self.snd_una,
            "snd_nxt": self.snd_nxt,
            "snd_max": self.snd_max,
            "outstanding": self.flight_size(),
            "unsent": self.unsent_bytes(),
            "rcv_nxt": self.recv.rcv_nxt,
            "rexmt_timer_ticks": self.t_rexmt,
            "rexmt_shift": self.rexmt_shift,
            "consecutive_timeouts": self.consecutive_timeouts,
            "coarse_timeouts": self.stats.coarse_timeouts,
            "aborted": self.aborted,
            "unfinished": self.has_unfinished_work(),
        }

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        """Send a SYN (active open)."""
        if self._state is not State.CLOSED or self.stats.open_time is not None:
            raise ProtocolError("connection already opened")
        self.stats.open_time = self.sim.now
        self.state = State.SYN_SENT
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.snd_max = self.iss + 1
        self._trace(Kind.STATE, self._state.value)
        self._send_syn()

    def open_passive(self, syn: TCPSegment) -> None:
        """Respond to an incoming SYN (passive open)."""
        if self._state is not State.CLOSED:
            raise ProtocolError("connection already opened")
        self.stats.open_time = self.sim.now
        self.recv.init_sequence(syn.seq + 1)
        self.peer_wnd = syn.wnd
        self.peer_wnd_seen = True
        self.state = State.SYN_RCVD
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.snd_max = self.iss + 1
        self._trace(Kind.STATE, self._state.value)
        self._send_syn(ack=True)

    def _send_syn(self, ack: bool = False) -> None:
        st = self._st
        i = self._slot
        flags = FLAG_SYN | (FLAG_ACK if ack else 0)
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         seq=self.iss, length=0,
                         ack=self.recv.rcv_nxt if ack else 0,
                         flags=flags, wnd=self.recv.rcv_wnd)
        self._note_send_time(self.iss + 1, self.sim.now)
        if st.timing_seq[i] < 0:
            st.timing_seq[i] = self.iss
            st.timing_ticks[i] = 1
        if self._checker is not None:
            self._checker.note_sent(self, self.iss, self.iss + 1,
                                    is_data=False)
        self._arm_rexmt()
        self._transmit(seg)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def app_send(self, nbytes: int) -> int:
        """Queue *nbytes* of application data; returns the accepted count."""
        if self.fin_pending or self.fin_sent:
            raise ProtocolError("cannot send after close()")
        self.protocol.notify_activity()
        accepted = self.sendbuf.write(nbytes)
        if accepted:
            self.stats.app_bytes_queued += accepted
            self._trace(Kind.APP_WRITE, accepted)
        state = self._state
        if state is State.ESTABLISHED or state is State.CLOSING:
            self.output()
        return accepted

    def close(self) -> None:
        """Half-close: send FIN once all queued data has been sent."""
        if self.fin_pending or self.fin_sent:
            return
        self.protocol.notify_activity()
        self.fin_pending = True
        state = self._state
        if state is State.ESTABLISHED or state is State.CLOSING:
            self.output()

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------
    def output(self) -> None:
        """Send as much queued data as the windows allow (BSD tcp_output)."""
        state = self._state
        if state is not State.ESTABLISHED and state is not State.CLOSING:
            return
        # Hot loop: the window terms are recomputed each iteration (a
        # sent segment moves snd_nxt) but straight off the flat store's
        # hoisted columns rather than via helper properties.
        st = self._st
        i = self._slot
        mss = self.mss
        sendbuf = self.sendbuf
        paced = self._paced
        col_nxt = st.snd_nxt
        col_una = st.snd_una
        col_cwnd = st.cwnd
        col_pwnd = st.peer_wnd
        while True:
            snd_nxt = col_nxt[i]
            flight = snd_nxt - col_una[i]
            window = col_cwnd[i]
            peer_wnd = col_pwnd[i]
            if peer_wnd < window:
                window = peer_wnd
            usable = window - flight
            unsent = sendbuf.queued_end - snd_nxt
            if unsent > 0 and usable > 0:
                length = min(mss, unsent, usable)
                if length < mss and self.nagle and flight > 0:
                    # Nagle / silly-window avoidance: hold sub-MSS
                    # segments while data is outstanding.
                    break
                if paced:
                    if self._pacing_blocked():
                        break
                    self._send_data_segment(snd_nxt, length)
                    self._pacing_charge(length)
                else:
                    self._send_data_segment(snd_nxt, length)
                continue
            if (self.fin_pending and not self.fin_sent and unsent == 0
                    and snd_nxt == sendbuf.queued_end):
                self._send_fin()
            break

    def _sack_blocks(self) -> tuple:
        if not self.sack_enabled:
            return ()
        return tuple(self.recv.reasm.intervals()[:MAX_SACK_BLOCKS])

    def _send_data_segment(self, seq: int, length: int,
                           probe: bool = False) -> None:
        st = self._st
        i = self._slot
        now = self.sim.now
        stats = self.stats
        recv = self.recv
        tracer = self.tracer
        tracing = tracer.enabled
        record = tracer.record
        end_seq = seq + length
        is_retx = end_seq <= st.snd_max[i]
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         seq, length, recv.rcv_nxt, FLAG_ACK, recv.rcv_wnd,
                         self._sack_blocks() if self.sack_enabled else ())
        st.delack[i] = 0  # inlined recv.ack_sent()
        send_times = st.send_times[i]
        if is_retx:
            stats.retransmitted_bytes += length
            stats.retransmit_segments += 1
            if tracing:
                record(now, Kind.RETX, seq, length)
            if end_seq in send_times:
                st.ambiguous[i].add(end_seq)
            # Karn: a retransmission covering the timed segment
            # invalidates the coarse measurement.
            tseq = st.timing_seq[i]
            if 0 <= tseq and seq <= tseq < end_seq:
                st.timing_seq[i] = -1
        else:
            if tracing:
                record(now, Kind.SEND, seq, length)
            if st.timing_seq[i] < 0 and not probe:
                st.timing_seq[i] = seq
                st.timing_ticks[i] = 1
        # Inlined _note_send_time: retransmissions refresh the clock of
        # an end_seq that is already indexed; only genuinely new keys
        # enter the heap, so heap and dict hold exactly the same keys.
        if end_seq not in send_times:
            _heappush(st.ends_heap[i], end_seq)
        send_times[end_seq] = now
        if probe:
            # A persist probe is a forced 1-byte send outside the
            # window discipline.  Its RTT measures a starved path, so
            # it must never become a Vegas distinguished segment or
            # feed BaseRTT — mark it and keep congestion control blind.
            st.probe_ends[i].add(end_seq)
        stats.bytes_sent_total += length
        stats.segments_sent += 1
        if stats.first_send_time is None:
            stats.first_send_time = now
        if end_seq > st.snd_nxt[i]:
            st.snd_nxt[i] = end_seq
        if end_seq > st.snd_max[i]:
            st.snd_max[i] = end_seq
        if self._checker is not None:
            self._checker.note_sent(self, seq, end_seq)
        if st.t_rexmt[i] < 0:  # _arm_rexmt() inlined
            cr = self.coarse_rtt
            st.t_rexmt[i] = min(cr.max_rto_ticks,
                                st.coarse_rto_ticks[i] << st.rexmt_shift[i])
        if not probe:
            self.cc.on_segment_sent(seq, length, end_seq, is_retx, now)
        if tracing:
            record(now, Kind.FLIGHT, st.snd_nxt[i] - st.snd_una[i])
        self._transmit(seg)

    def _send_fin(self) -> None:
        seq = self.sendbuf.queued_end
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         seq=seq, length=0, ack=self.recv.rcv_nxt,
                         flags=FLAG_ACK | FLAG_FIN, wnd=self.recv.rcv_wnd)
        self.recv.ack_sent()
        self.fin_sent = True
        self.fin_end = seq + 1
        self._note_send_time(self.fin_end, self.sim.now)
        if self.fin_end > self.snd_nxt:
            self.snd_nxt = self.fin_end
        if self.fin_end > self.snd_max:
            self.snd_max = self.fin_end
        if self._checker is not None:
            self._checker.note_sent(self, seq, self.fin_end, is_data=False)
        self.state = State.CLOSING
        self._trace(Kind.FIN, seq)
        self._trace(Kind.STATE, self._state.value)
        self._arm_rexmt()
        self._transmit(seg)

    def retransmit_first_unacked(self, reason: str = "fast") -> int:
        """Resend the segment at ``snd_una`` (fast/fine retransmission).

        Returns the retransmitted segment's starting sequence number.
        Called by congestion-control policies; the window decision is
        theirs, the mechanics are here.
        """
        st = self._st
        i = self._slot
        snd_una = st.snd_una[i]
        data_end = self.sendbuf.queued_end
        if snd_una < data_end:
            length = min(self.mss, data_end - snd_una,
                         max(st.snd_max[i] - snd_una, 0))
            if length <= 0:
                return snd_una
            if reason.startswith("fine"):
                self.stats.fine_retransmits += 1
                self._trace(Kind.FINE_RETX, snd_una,
                            1 if reason == "fine-dupack" else 2)
            else:
                self.stats.fast_retransmits += 1
            self._send_data_segment(snd_una, length)
            return snd_una
        if self.fin_sent and not self.fin_acked:
            self._send_fin_again()
        return snd_una

    def retransmit_hole(self, seq: int, length: int,
                        reason: str = "sack") -> None:
        """Resend the un-SACKed chunk at *seq* (SACK-driven recovery).

        Unlike :meth:`retransmit_first_unacked`, the chunk may sit
        anywhere between ``snd_una`` and ``snd_max``.
        """
        length = min(length, self.mss,
                     max(0, self.sendbuf.queued_end - seq))
        if length <= 0 or seq < self.snd_una:
            return
        if reason == "sack":
            self.stats.fast_retransmits += 1
        self._send_data_segment(seq, length)

    def _send_fin_again(self) -> None:
        seq = self.sendbuf.queued_end
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         seq=seq, length=0, ack=self.recv.rcv_nxt,
                         flags=FLAG_ACK | FLAG_FIN, wnd=self.recv.rcv_wnd)
        self.recv.ack_sent()
        if self.fin_end is not None:
            self._note_send_time(self.fin_end, self.sim.now)
            self._ambiguous.add(self.fin_end)
        self._arm_rexmt()
        self._transmit(seg)

    def send_ack(self) -> None:
        """Send a pure ACK now (with SACK blocks when enabled)."""
        recv = self.recv
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         self.snd_nxt, 0, recv.rcv_nxt, FLAG_ACK,
                         recv.rcv_wnd,
                         self._sack_blocks() if self.sack_enabled else ())
        self._st.delack[self._slot] = 0  # inlined recv.ack_sent()
        self._transmit(seg)
        # One echo (at least) per congestion mark.
        self._ece_pending = False

    def _transmit(self, seg: TCPSegment) -> None:
        if self.ecn_enabled and self._ece_pending and seg.flags & FLAG_ACK:
            seg.flags |= FLAG_ECE
        packet = Packet(self.flow.local_addr, self.flow.remote_addr,
                        seg,
                        # seg.wire_size inlined (one call per segment).
                        HEADER_BYTES + seg.length
                        + SACK_BLOCK_BYTES * len(seg.sack),
                        created_at=self.sim.now,
                        ecn_capable=self.ecn_enabled and seg.length > 0)
        host = self._host
        route = self._route
        if route is None:
            route = host.forwarding.get(self.flow.remote_addr)
            if route is None or self.flow.remote_addr == host.name:
                # No route yet (or loopback): the general path raises
                # or loops back as appropriate.
                self._send_packet(packet)
                return
            self._route = route
        host.packets_sent += 1
        host.bytes_sent += packet.size
        route[2](packet, route[1])

    # ------------------------------------------------------------------
    # Input path
    # ------------------------------------------------------------------
    def handle_segment(self, seg: TCPSegment, ecn_marked: bool = False) -> None:
        """Process an inbound segment addressed to this connection.

        ``ecn_marked`` reports that the carrying packet received a
        congestion mark in the network (set by the demultiplexer).
        """
        # Flag bits are tested directly (seg.flags & FLAG_*) on this
        # path: the syn/has_ack/fin properties cost a descriptor call
        # per test, which adds up at one segment per data event.
        flags = seg.flags
        if self.ecn_enabled and ecn_marked:
            self._ece_pending = True
        state = self._state
        if state is State.SYN_SENT:
            self._handle_syn_sent(seg)
            if self._checker is not None:
                self._checker.on_segment_processed(self)
            return
        if state is State.SYN_RCVD:
            if flags & FLAG_ACK and seg.ack >= self.iss + 1:
                self._become_established(seg)
                # Fall through: the segment may carry data too.
            elif flags & FLAG_SYN:
                # Our SYN-ACK was lost; resend it.
                self._send_syn(ack=True)
                return
        elif state is State.CLOSED:
            # Residual segments after close (e.g. a retransmitted FIN):
            # re-ACK so the peer can finish, then ignore.
            if seg.length > 0 or flags & FLAG_FIN:
                self.send_ack()
            return

        if flags & FLAG_ACK:
            self._process_ack(seg)

        delivered, action = self.recv.process_data(seg)
        if delivered and self.on_data is not None:
            self.on_data(self, delivered)
        self.stats.bytes_received += delivered

        fin_action = flags & FLAG_FIN and self._process_fin(seg)
        if fin_action or action is AckAction.NOW:
            self.send_ack()

        if self.fin_acked and self.peer_fin:  # _maybe_done precondition
            self._maybe_done()
        if self._checker is not None:
            self._checker.on_segment_processed(self)

    def _handle_syn_sent(self, seg: TCPSegment) -> None:
        if not (seg.syn and seg.has_ack and seg.ack == self.iss + 1):
            return  # simultaneous open unsupported; ignore
        self.recv.init_sequence(seg.seq + 1)
        self._note_ack_progress(seg.ack)
        self._become_established(seg)
        self.send_ack()
        self.output()

    def _become_established(self, seg: TCPSegment) -> None:
        self.state = State.ESTABLISHED
        self.stats.established_time = self.sim.now
        self.peer_wnd = seg.wnd
        self.peer_wnd_seen = True
        if seg.has_ack and seg.ack == self.iss + 1:
            self._note_ack_progress(seg.ack)
        self._trace(Kind.ESTABLISHED)
        self._trace(Kind.STATE, self._state.value)
        self.cc.on_established(self.sim.now)
        if self.on_established is not None:
            self.on_established(self)
        self.output()

    def _note_ack_progress(self, ack: int) -> None:
        """Minimal ack bookkeeping used during the handshake."""
        st = self._st
        i = self._slot
        if ack <= st.snd_una[i] or ack > st.snd_max[i]:
            return
        tseq = st.timing_seq[i]
        if 0 <= tseq < ack:
            self.coarse_rtt.update(st.timing_ticks[i])
            st.timing_seq[i] = -1
        sample = self._fine_sample_for(ack)
        if sample is not None:
            # A SYN is 40 bytes on the wire; its RTT under-represents
            # the serialization a full data segment pays, so it feeds
            # the smoothed estimate but not BaseRTT.
            self.fine_rtt.update(sample, update_base=False)
            self.stats.note_rtt(sample)
        self._purge_send_times(ack)
        st.snd_una[i] = ack
        if self._checker is not None:
            self._checker.on_ack(self, ack)
        st.rexmt_shift[i] = 0
        st.consec_timeouts[i] = 0
        if ack >= st.snd_max[i]:
            st.t_rexmt[i] = -1
        else:
            self._arm_rexmt(force=True)

    def _process_ack(self, seg: TCPSegment) -> None:
        st = self._st
        i = self._slot
        ack = seg.ack
        if ack > st.snd_max[i]:
            return  # acks data never sent; ignore
        flags = seg.flags
        if self.ecn_enabled and flags & FLAG_ECE:
            self.ecn_echoes_received += 1
            self.cc.on_ecn_echo(self.sim.now)
        if self.sack_enabled and seg.sack:
            snd_max = st.snd_max[i]
            for start, end in seg.sack:
                self.sack_board.add(start, min(end, snd_max))
        seg_wnd = seg.wnd
        snd_una = st.snd_una[i]
        if ack > snd_una:
            st.peer_wnd[i] = seg_wnd
            self._handle_new_ack(ack, seg)
        elif (ack == snd_una and seg.length == 0
              and not flags & (FLAG_SYN | FLAG_FIN)
              and st.snd_nxt[i] > snd_una
              and seg_wnd == st.peer_wnd[i]):
            dupacks = st.dupacks[i] + 1
            st.dupacks[i] = dupacks
            self.stats.dup_acks_received += 1
            self._trace(Kind.DUPACK_RX, ack, dupacks)
            self.cc.on_dup_ack(dupacks, self.sim.now)
            self.output()
        else:
            st.peer_wnd[i] = seg_wnd

    def _handle_new_ack(self, ack: int, seg: TCPSegment) -> None:
        st = self._st
        i = self._slot
        now = self.sim.now
        stats = self.stats
        tracer = self.tracer
        # record() is a no-op on a disabled tracer, so guarding the
        # call sites (and their argument computation) is bit-identical
        # and saves four calls per ACK on untraced connections.
        tracing = tracer.enabled
        record = tracer.record
        acked = ack - st.snd_una[i]
        stats.acks_received += 1
        if tracing:
            record(now, Kind.ACK_RX, ack)
        # Coarse RTT sample (one timed segment at a time, Karn-guarded).
        tseq = st.timing_seq[i]
        if 0 <= tseq < ack:
            self.coarse_rtt.update(st.timing_ticks[i])
            st.timing_seq[i] = -1
        # Fine-grained RTT sample from per-segment clocks.  FIN-only
        # segments (40 bytes on the wire) are excluded from BaseRTT for
        # the same reason SYNs are: they pay less serialization than a
        # data segment and would read as an impossibly good path.
        send_times = st.send_times[i]
        ts = send_times.get(ack)
        sample = None
        if ts is not None and ack not in st.ambiguous[i]:
            sample = now - ts
        if sample is not None:
            fin_end = self.fin_end
            is_fin_sample = (fin_end is not None and ack == fin_end
                             and self.sendbuf.queued_end < ack)
            # A persist probe's RTT is measured through a zero-window
            # stall; like SYN/FIN samples it feeds the smoothed
            # estimator but must not lower BaseRTT, and congestion
            # control never sees it.
            is_probe_sample = ack in st.probe_ends[i]
            self.fine_rtt.update(
                sample, update_base=not (is_fin_sample or is_probe_sample))
            stats.note_rtt(sample)
            if tracing:
                record(now, Kind.RTT_SAMPLE, sample * 1e6)
            if is_fin_sample or is_probe_sample:
                sample = None
        # Inlined _purge_send_times: the heap's top is the smallest
        # outstanding end_seq, so the cumulative ACK peels covered
        # entries in O(log n) each.
        ends_heap = st.ends_heap[i]
        ambiguous = st.ambiguous[i]
        probe_ends = st.probe_ends[i]
        while ends_heap and ends_heap[0] <= ack:
            k = _heappop(ends_heap)
            del send_times[k]
            ambiguous.discard(k)
            probe_ends.discard(k)
        st.snd_una[i] = ack
        if st.snd_nxt[i] < ack:
            # After a timeout rolled snd_nxt back, an ACK for the
            # original (pre-rollback) transmissions can pass it; pull
            # snd_nxt forward so the flight never goes negative (the
            # same guard 4.3 BSD applies after ACK processing).
            st.snd_nxt[i] = ack
        if self._checker is not None:
            self._checker.on_ack(self, ack)
        if self.sack_enabled:
            # Only _process_ack with sack_enabled ever populates the
            # board, so the advance is a no-op for everyone else.
            self.sack_board.advance_to(ack)
        freed = self.sendbuf.ack_to(ack)
        if freed:
            stats.app_bytes_acked += freed
            stats.last_ack_time = now
        fin_end = self.fin_end
        if self.fin_sent and fin_end is not None and ack >= fin_end:
            self.fin_acked = True
            stats.last_ack_time = now
        st.dupacks[i] = 0
        st.rexmt_shift[i] = 0
        st.consec_timeouts[i] = 0
        self.cc.on_new_ack(acked, now, sample)
        if ack >= st.snd_max[i]:
            st.t_rexmt[i] = -1
        else:
            # _arm_rexmt(force=True) inlined; rexmt_shift was just
            # zeroed, so the backed-off RTO is the clamped base RTO.
            rto = st.coarse_rto_ticks[i]
            cap = self.coarse_rtt.max_rto_ticks
            st.t_rexmt[i] = rto if rto < cap else cap
        if tracing:
            record(now, Kind.SND_WND,
                   min(self.sendbuf.capacity, st.peer_wnd[i]))
            record(now, Kind.FLIGHT, st.snd_nxt[i] - st.snd_una[i])
        self.output()
        if freed and self.on_send_space is not None:
            self.on_send_space(self)

    def _process_fin(self, seg: TCPSegment) -> bool:
        """Handle an in-order FIN; returns True if it was consumed."""
        if not seg.fin or self.peer_fin:
            return False
        fin_seq = seg.seq + seg.length
        if fin_seq != self.recv.rcv_nxt:
            return False  # out of order; peer will retransmit
        self.recv.reasm.rcv_nxt += 1
        self.peer_fin = True
        if self.on_peer_fin is not None:
            self.on_peer_fin(self)
        else:
            self.close()
        return True

    def _maybe_done(self) -> None:
        if (self.fin_acked and self.peer_fin
                and self._state is not State.CLOSED):
            self.state = State.CLOSED
            self.t_rexmt = None
            self.stats.close_time = self.sim.now
            self._trace(Kind.STATE, self._state.value)
            self.protocol.connection_closed(self)
            if self.on_closed is not None:
                self.on_closed(self)

    # ------------------------------------------------------------------
    # Fine-grained clock bookkeeping (§3.1)
    # ------------------------------------------------------------------
    def _fine_sample_for(self, ack: int) -> Optional[float]:
        """Exact RTT for the segment whose end is *ack*, if unambiguous."""
        st = self._st
        i = self._slot
        ts = st.send_times[i].get(ack)
        if ts is None or ack in st.ambiguous[i]:
            return None
        return self.sim.now - ts

    def _note_send_time(self, end_seq: int, now: float) -> None:
        """Record a transmit clock, keeping the end-seq heap in sync.

        Retransmissions refresh the clock of an end_seq that is already
        indexed; only genuinely new keys enter the heap, so heap and
        dict always hold exactly the same key set.
        """
        st = self._st
        i = self._slot
        send_times = st.send_times[i]
        if end_seq not in send_times:
            _heappush(st.ends_heap[i], end_seq)
        send_times[end_seq] = now

    def _purge_send_times(self, ack: int) -> None:
        # The heap's top is the smallest outstanding end_seq, so the
        # cumulative ACK peels covered entries in O(log n) each — the
        # seed scanned the whole dict per ACK, O(window) on every ack.
        st = self._st
        i = self._slot
        heap = st.ends_heap[i]
        send_times = st.send_times[i]
        ambiguous = st.ambiguous[i]
        probe_ends = st.probe_ends[i]
        while heap and heap[0] <= ack:
            k = _heappop(heap)
            del send_times[k]
            ambiguous.discard(k)
            probe_ends.discard(k)

    def first_unacked_send_time(self) -> Optional[float]:
        """Latest transmit time of the segment containing ``snd_una``.

        This is the clock Vegas reads when a duplicate ACK arrives: if
        ``now - send_time > fine RTO`` the segment is declared lost
        without waiting for three duplicates.
        """
        # snd_una only advances through the purge paths, so the heap's
        # top is normally already > snd_una; the lazy pop is a
        # defensive sweep that keeps the invariant even if a caller
        # moved snd_una directly.
        st = self._st
        i = self._slot
        heap = st.ends_heap[i]
        send_times = st.send_times[i]
        una = st.snd_una[i]
        while heap and heap[0] <= una:
            k = _heappop(heap)
            send_times.pop(k, None)
            st.ambiguous[i].discard(k)
            st.probe_ends[i].discard(k)
        if not heap:
            return None
        return send_times[heap[0]]

    # ------------------------------------------------------------------
    # Timers (driven by the host protocol's periodic timers)
    # ------------------------------------------------------------------
    def slow_tick(self) -> None:
        """One 500 ms coarse-timer tick (the Figure-2 'diamond').

        On the fast path the protocol's flat array scan performs this
        same sequence directly on the store; this method is the
        per-object form used by the slow path, direct tests, and the
        idle-suppression scan.
        """
        if self._state is State.CLOSED:
            return
        st = self._st
        i = self._slot
        t = st.t_rexmt[i]
        self._trace(Kind.TIMER_CHECK, t)  # -1 sentinel == the old "unarmed"
        if st.timing_seq[i] >= 0:
            st.timing_ticks[i] += 1
        if t >= 0:
            t -= 1
            st.t_rexmt[i] = t
            if t <= 0:
                self._coarse_timeout()
        self._maybe_persist_probe()

    def fast_tick(self) -> None:
        """One 200 ms fast-timer tick: flush a pending delayed ACK."""
        if self._state is State.CLOSED:
            return
        if self._st.delack[self._slot]:
            self.send_ack()

    def needs_coarse_timers(self) -> bool:
        """False only when the host's periodic timers have no work here.

        Used by the protocol's opt-in idle suppression: a connection
        is quiescent when it is established with nothing in flight,
        nothing queued, no retransmit countdown, and no delayed ACK
        pending.  Everything else (handshake, FIN exchange, zero-window
        persist) conservatively keeps the timers running.
        """
        st = self._st
        i = self._slot
        snd_nxt = st.snd_nxt[i]
        return (self._state is not State.ESTABLISHED
                or st.t_rexmt[i] >= 0
                or snd_nxt != st.snd_una[i]
                or self.sendbuf.queued_end != snd_nxt
                or self.fin_pending
                or st.delack[i] != 0)

    def _arm_rexmt(self, force: bool = False) -> None:
        st = self._st
        i = self._slot
        if force or st.t_rexmt[i] < 0:
            st.t_rexmt[i] = self.coarse_rtt.backed_off_rto(st.rexmt_shift[i])

    def _coarse_timeout(self) -> None:
        st = self._st
        i = self._slot
        self.stats.coarse_timeouts += 1
        self._trace(Kind.COARSE_TIMEOUT, st.snd_una[i])
        timeouts = st.consec_timeouts[i] + 1
        st.consec_timeouts[i] = timeouts
        if timeouts > C.MAX_REXMT_SHIFT:
            self._abort()
            return
        st.rexmt_shift[i] = min(st.rexmt_shift[i] + 1, C.MAX_REXMT_SHIFT)
        st.timing_seq[i] = -1  # Karn
        st.dupacks[i] = 0
        self.cc.on_coarse_timeout(self.sim.now)
        self._arm_rexmt(force=True)
        state = self._state
        if state is State.SYN_SENT or state is State.SYN_RCVD:
            self._send_syn(ack=(state is State.SYN_RCVD))
            return
        # Go back to the first unacknowledged byte; with cwnd reset to
        # one segment, output() resends exactly one segment.
        snd_una = st.snd_una[i]
        st.snd_nxt[i] = snd_una
        if snd_una >= self.sendbuf.queued_end and self.fin_sent:
            self._send_fin_again()
        else:
            self.output()

    def _pacing_blocked(self) -> bool:
        """True when pacing defers transmission; reschedules output."""
        rate = self.cc.pacing_rate()
        if rate is None or self.sim.now >= self._st.pace_next[self._slot]:
            return False
        if self._pace_event is None:
            self._pace_event = self.sim.schedule(
                self._st.pace_next[self._slot] - self.sim.now, self._pace_fire)
        return True

    def _pace_fire(self) -> None:
        # Null the handle first: a fired Event is dead (its object may
        # be recycled by the engine's pool), so holding it would both
        # pin a stale args tuple and make any later liveness check on
        # it meaningless.  `is None` is the only valid pending test.
        self._pace_event = None
        self.output()

    def _pacing_charge(self, length: int) -> None:
        """Advance the pacing clock after sending *length* bytes."""
        rate = self.cc.pacing_rate()
        if rate is None or rate <= 0:
            return
        st = self._st
        i = self._slot
        base = max(st.pace_next[i], self.sim.now)
        st.pace_next[i] = base + length / rate

    def _abort(self) -> None:
        """Give up after too many fruitless retransmissions (BSD-style)."""
        self.aborted = True
        self.state = State.CLOSED
        self.t_rexmt = None
        self.stats.close_time = self.sim.now
        self._trace(Kind.STATE, self._state.value)
        self.protocol.connection_closed(self)
        if self.on_closed is not None:
            self.on_closed(self)

    def _maybe_persist_probe(self) -> None:
        """Zero-window persist probes with BSD-style exponential backoff.

        The seed sent one probe per 500 ms slow tick forever.  Real BSD
        backs the persist interval off exponentially (TCPTV_PERSMIN up
        to TCPTV_PERSMAX); here the countdown doubles per probe, capped
        at :data:`~repro.tcp.constants.MAX_PERSIST_TICKS`.  Leaving
        persist (window opened, or nothing left to send) resets the
        backoff so the next stall starts probing promptly again.
        """
        st = self._st
        i = self._slot
        state = self._state
        if ((state is not State.ESTABLISHED and state is not State.CLOSING)
                or st.peer_wnd[i] != 0
                or self.sendbuf.queued_end - st.snd_nxt[i] <= 0):
            st.persist_shift[i] = 0
            st.persist_countdown[i] = 0
            return
        if st.snd_nxt[i] - st.snd_una[i] > 0:
            # An earlier probe (or data) is still unacknowledged; the
            # retransmit machinery owns it.  Backoff state is kept.
            return
        if st.persist_countdown[i] > 0:
            st.persist_countdown[i] -= 1
            return
        self._persist_fire()

    def _persist_fire(self) -> None:
        """Send one zero-window probe and back its interval off."""
        st = self._st
        i = self._slot
        seq = st.snd_nxt[i]
        self.stats.persist_probes += 1
        self._trace(Kind.PROBE, seq, st.persist_shift[i])
        self._send_data_segment(seq, 1, probe=True)
        st.persist_countdown[i] = min(1 << st.persist_shift[i],
                                      C.MAX_PERSIST_TICKS)
        st.persist_shift[i] = min(st.persist_shift[i] + 1,
                                  C.MAX_REXMT_SHIFT)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _trace(self, kind: Kind, a: float = 0.0, b: float = 0.0) -> None:
        self.tracer.record(self.sim.now, kind, a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TCPConnection({self.flow}, {self._state.name}, "
                f"una={self.snd_una}, nxt={self.snd_nxt}, "
                f"cwnd={self.cc.cwnd})")
