"""The TCP connection endpoint.

One :class:`TCPConnection` is one endpoint (the equivalent of a BSD
socket + tcpcb).  It owns:

* the sender half: send buffer, ``snd_una``/``snd_nxt``/``snd_max``,
  the coarse (tick-granularity) retransmit machinery driven by the
  host's 500 ms slow timer, per-segment fine-grained timestamps (the
  clock readings Vegas' §3.1 mechanism relies on), and a pluggable
  :class:`~repro.core.base.CongestionControl` policy;
* the receiver half (:class:`~repro.tcp.receiver.ReceiverHalf`):
  cumulative/duplicate/delayed ACK generation;
* a small connection state machine (simplified three-way handshake and
  FIN exchange — no TIME_WAIT, no RST).

Everything observable about the connection is recorded through the
attached :class:`~repro.trace.tracer.ConnectionTracer`, which is what
the paper's graphing tools consume.
"""

from __future__ import annotations

import enum
import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.checks import runtime as checks_runtime
from repro.errors import ProtocolError
from repro.obs import runtime as obs_runtime
from repro.sim import watchdog as watchdog_runtime
from repro.metrics.flowstats import FlowStats
from repro.net.addresses import FlowId
from repro.net.packet import Packet
from repro.tcp import constants as C
from repro.tcp.buffers import SendBuffer
from repro.tcp.receiver import AckAction, ReceiverHalf
from repro.tcp.rtt import CoarseRttEstimator, FineRttEstimator
from repro.tcp.sack import SackScoreboard
from repro.tcp.segment import (
    FLAG_ACK,
    FLAG_ECE,
    FLAG_FIN,
    FLAG_SYN,
    MAX_SACK_BLOCKS,
    TCPSegment,
)
from repro.trace.records import Kind
from repro.trace.tracer import NULL_TRACER, ConnectionTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import CongestionControl
    from repro.tcp.protocol import TCPProtocol


class State(enum.Enum):
    CLOSED = 0
    SYN_SENT = 1
    SYN_RCVD = 2
    ESTABLISHED = 3
    CLOSING = 4      # FIN exchange in progress (either direction)


class TCPConnection:
    """One endpoint of a TCP connection with pluggable congestion control."""

    def __init__(self, protocol: "TCPProtocol", flow: FlowId,
                 cc: "CongestionControl",
                 mss: int = C.DEFAULT_MSS,
                 sndbuf: int = C.DEFAULT_SOCKBUF,
                 rcvbuf: int = C.DEFAULT_SOCKBUF,
                 tracer: Optional[ConnectionTracer] = None,
                 nagle: bool = True,
                 delayed_acks: bool = True,
                 sack: bool = False,
                 ecn: bool = False):
        self.protocol = protocol
        self.sim = protocol.sim
        self.flow = flow
        self.mss = mss
        self.nagle = nagle
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = FlowStats()
        self.state = State.CLOSED

        # --- Sender half -------------------------------------------------
        self.iss = 0
        self.sendbuf = SendBuffer(sndbuf, start_seq=1)
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_max = 0          # highest end-sequence ever sent
        self.peer_wnd = 0
        self.peer_wnd_seen = False
        self.dupacks = 0
        self.rexmt_shift = 0
        self.t_rexmt: Optional[int] = None   # ticks until coarse timeout
        self.coarse_rtt = CoarseRttEstimator()
        self.fine_rtt = FineRttEstimator()
        self._timing_seq: Optional[int] = None   # coarse timing (one at a time)
        self._timing_ticks = 0
        # Fine-grained per-segment clocks: end_seq -> last transmit time.
        # _ends_heap is a min-heap over exactly the dict's keys, so the
        # smallest outstanding end_seq is O(1) and purging on ACK is
        # O(log n) per removed entry instead of a full-dict scan.
        self._send_times: Dict[int, float] = {}
        self._ends_heap: List[int] = []
        self._ambiguous: set = set()   # end_seqs retransmitted (Karn)
        # Zero-window persist machinery: probe end_seqs are excluded
        # from congestion-control measurements, and probes back off
        # exponentially instead of firing every slow tick.
        self._probe_ends: set = set()
        self._persist_shift = 0
        self._persist_countdown = 0
        self.fin_pending = False
        self.fin_sent = False
        self.fin_end: Optional[int] = None
        self.fin_acked = False
        #: Consecutive coarse timeouts without forward progress; the
        #: connection aborts when this exceeds MAX_REXMT_SHIFT, like
        #: BSD's dropwithreset after 12 fruitless retransmissions.
        self.consecutive_timeouts = 0
        self.aborted = False
        # Optional transmission pacing (used by the experimental
        # rate-controlled slow start of §3.3's future work).
        self._pace_next_time = 0.0
        self._pace_event = None
        # Selective acknowledgements (§6 extension): when enabled, this
        # endpoint *sends* SACK blocks for its out-of-order reassembly
        # queue and keeps a scoreboard of blocks the peer reports.
        self.sack_enabled = sack
        self.sack_board = SackScoreboard()
        # Explicit congestion notification (RFC 3168, simplified): data
        # packets are sent ECN-capable; a congestion mark seen by the
        # receiver is echoed on its next ACKs until new data confirms
        # the sender reacted.
        self.ecn_enabled = ecn
        self._ece_pending = False
        self.ecn_echoes_received = 0

        # --- Receiver half ------------------------------------------------
        self.recv = ReceiverHalf(rcvbuf, delayed_acks=delayed_acks)
        self.peer_fin = False

        # --- Application callbacks ----------------------------------------
        self.on_established: Optional[Callable[["TCPConnection"], None]] = None
        self.on_data: Optional[Callable[["TCPConnection", int], None]] = None
        self.on_send_space: Optional[Callable[["TCPConnection"], None]] = None
        self.on_peer_fin: Optional[Callable[["TCPConnection"], None]] = None
        self.on_closed: Optional[Callable[["TCPConnection"], None]] = None

        self.cc = cc
        cc.attach(self)

        # Invariant checking (repro.checks): bound at construction so
        # every hook below is one `is not None` test when inactive.
        self._checker = checks_runtime.active()
        if self._checker is not None:
            self._checker.register_connection(self)
        # Liveness watchdog (repro.sim.watchdog): registration only —
        # the watchdog polls this connection from the engine loop via
        # the liveness_* protocol below, so inactive runs pay nothing.
        _watchdog = watchdog_runtime.active()
        if _watchdog is not None:
            _watchdog.register_connection(self)
        # Telemetry gauges (repro.obs): registration only; the sampler
        # reads cwnd/flight/mode from the engine loop.
        _obs = obs_runtime.active()
        if _obs is not None:
            _obs.register_connection(self)

    # ------------------------------------------------------------------
    # Convenience properties
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def is_closed(self) -> bool:
        return self.state == State.CLOSED and self.stats.close_time is not None

    def flight_size(self) -> int:
        """Bytes sent but not yet acknowledged."""
        return self.snd_nxt - self.snd_una

    @property
    def send_window(self) -> int:
        """min(cwnd, peer advertised window), the paper's send window."""
        return min(self.cc.cwnd, self.peer_wnd)

    def unsent_bytes(self) -> int:
        return self.sendbuf.queued_end - self.snd_nxt

    # ------------------------------------------------------------------
    # Liveness protocol (consumed by repro.sim.watchdog)
    # ------------------------------------------------------------------
    def liveness_progress(self) -> int:
        """Monotone counter that moves whenever this endpoint advances.

        Covers both halves: cumulative ACKs received by the sender
        (``snd_una``) and in-order bytes accepted by the receiver
        (``rcv_nxt``).  Retransmissions that are never acknowledged do
        *not* move it — that is exactly the stall mode the watchdog
        exists to catch.
        """
        return self.snd_una + self.recv.rcv_nxt

    def has_unfinished_work(self) -> bool:
        """True while this endpoint still owes the network something.

        An aborted connection counts as unfinished forever: whatever it
        was carrying never completed, which is a liveness failure, not
        a finished transfer.
        """
        if self.aborted:
            return True
        if self.state == State.CLOSED:
            return False
        if self.snd_nxt > self.snd_una or self.unsent_bytes() > 0:
            return True
        return (self.fin_pending or self.fin_sent) and not self.fin_acked

    def liveness_snapshot(self) -> Dict[str, object]:
        """Diagnostic state for a :class:`~repro.errors.SimulationStalled`."""
        return {
            "flow": str(self.flow),
            "state": self.state.name,
            "snd_una": self.snd_una,
            "snd_nxt": self.snd_nxt,
            "snd_max": self.snd_max,
            "outstanding": self.flight_size(),
            "unsent": self.unsent_bytes(),
            "rcv_nxt": self.recv.rcv_nxt,
            "rexmt_timer_ticks": self.t_rexmt,
            "rexmt_shift": self.rexmt_shift,
            "consecutive_timeouts": self.consecutive_timeouts,
            "coarse_timeouts": self.stats.coarse_timeouts,
            "aborted": self.aborted,
            "unfinished": self.has_unfinished_work(),
        }

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        """Send a SYN (active open)."""
        if self.state != State.CLOSED or self.stats.open_time is not None:
            raise ProtocolError("connection already opened")
        self.stats.open_time = self.sim.now
        self.state = State.SYN_SENT
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.snd_max = self.iss + 1
        self._trace(Kind.STATE, self.state.value)
        self._send_syn()

    def open_passive(self, syn: TCPSegment) -> None:
        """Respond to an incoming SYN (passive open)."""
        if self.state != State.CLOSED:
            raise ProtocolError("connection already opened")
        self.stats.open_time = self.sim.now
        self.recv.init_sequence(syn.seq + 1)
        self.peer_wnd = syn.wnd
        self.peer_wnd_seen = True
        self.state = State.SYN_RCVD
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.snd_max = self.iss + 1
        self._trace(Kind.STATE, self.state.value)
        self._send_syn(ack=True)

    def _send_syn(self, ack: bool = False) -> None:
        flags = FLAG_SYN | (FLAG_ACK if ack else 0)
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         seq=self.iss, length=0,
                         ack=self.recv.rcv_nxt if ack else 0,
                         flags=flags, wnd=self.recv.rcv_wnd)
        self._note_send_time(self.iss + 1, self.sim.now)
        if self._timing_seq is None:
            self._timing_seq = self.iss
            self._timing_ticks = 1
        if self._checker is not None:
            self._checker.note_sent(self, self.iss, self.iss + 1,
                                    is_data=False)
        self._arm_rexmt()
        self._transmit(seg)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def app_send(self, nbytes: int) -> int:
        """Queue *nbytes* of application data; returns the accepted count."""
        if self.fin_pending or self.fin_sent:
            raise ProtocolError("cannot send after close()")
        self.protocol.notify_activity()
        accepted = self.sendbuf.write(nbytes)
        if accepted:
            self.stats.app_bytes_queued += accepted
            self._trace(Kind.APP_WRITE, accepted)
        if self.state in (State.ESTABLISHED, State.CLOSING):
            self.output()
        return accepted

    def close(self) -> None:
        """Half-close: send FIN once all queued data has been sent."""
        if self.fin_pending or self.fin_sent:
            return
        self.protocol.notify_activity()
        self.fin_pending = True
        if self.state in (State.ESTABLISHED, State.CLOSING):
            self.output()

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------
    def output(self) -> None:
        """Send as much queued data as the windows allow (BSD tcp_output)."""
        if self.state not in (State.ESTABLISHED, State.CLOSING):
            return
        # Hot loop: the window terms are recomputed each iteration (a
        # sent segment moves snd_nxt) but via plain locals rather than
        # the send_window/flight_size/unsent_bytes helpers.
        cc = self.cc
        mss = self.mss
        sendbuf = self.sendbuf
        while True:
            snd_nxt = self.snd_nxt
            flight = snd_nxt - self.snd_una
            window = cc.cwnd
            peer_wnd = self.peer_wnd
            if peer_wnd < window:
                window = peer_wnd
            usable = window - flight
            unsent = sendbuf.queued_end - snd_nxt
            if unsent > 0 and usable > 0:
                length = min(mss, unsent, usable)
                if length < mss and self.nagle and flight > 0:
                    # Nagle / silly-window avoidance: hold sub-MSS
                    # segments while data is outstanding.
                    break
                if self._pacing_blocked():
                    break
                self._send_data_segment(snd_nxt, length)
                self._pacing_charge(length)
                continue
            if (self.fin_pending and not self.fin_sent and unsent == 0
                    and snd_nxt == sendbuf.queued_end):
                self._send_fin()
            break

    def _sack_blocks(self) -> tuple:
        if not self.sack_enabled:
            return ()
        return tuple(self.recv.reasm.intervals()[:MAX_SACK_BLOCKS])

    def _send_data_segment(self, seq: int, length: int,
                           probe: bool = False) -> None:
        now = self.sim.now
        stats = self.stats
        recv = self.recv
        record = self.tracer.record
        end_seq = seq + length
        is_retx = end_seq <= self.snd_max
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         seq, length, recv.rcv_nxt, FLAG_ACK, recv.rcv_wnd,
                         self._sack_blocks() if self.sack_enabled else ())
        recv.delack_pending = False  # inlined recv.ack_sent()
        if is_retx:
            stats.retransmitted_bytes += length
            stats.retransmit_segments += 1
            record(now, Kind.RETX, seq, length)
            if end_seq in self._send_times:
                self._ambiguous.add(end_seq)
            # Karn: a retransmission covering the timed segment
            # invalidates the coarse measurement.
            if (self._timing_seq is not None
                    and seq <= self._timing_seq < end_seq):
                self._timing_seq = None
        else:
            record(now, Kind.SEND, seq, length)
            if self._timing_seq is None and not probe:
                self._timing_seq = seq
                self._timing_ticks = 1
        self._note_send_time(end_seq, now)
        if probe:
            # A persist probe is a forced 1-byte send outside the
            # window discipline.  Its RTT measures a starved path, so
            # it must never become a Vegas distinguished segment or
            # feed BaseRTT — mark it and keep congestion control blind.
            self._probe_ends.add(end_seq)
        stats.bytes_sent_total += length
        stats.segments_sent += 1
        if stats.first_send_time is None:
            stats.first_send_time = now
        if end_seq > self.snd_nxt:
            self.snd_nxt = end_seq
        if end_seq > self.snd_max:
            self.snd_max = end_seq
        if self._checker is not None:
            self._checker.note_sent(self, seq, end_seq)
        self._arm_rexmt()
        if not probe:
            self.cc.on_segment_sent(seq, length, end_seq, is_retx, now)
        record(now, Kind.FLIGHT, self.snd_nxt - self.snd_una)
        self._transmit(seg)

    def _send_fin(self) -> None:
        seq = self.sendbuf.queued_end
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         seq=seq, length=0, ack=self.recv.rcv_nxt,
                         flags=FLAG_ACK | FLAG_FIN, wnd=self.recv.rcv_wnd)
        self.recv.ack_sent()
        self.fin_sent = True
        self.fin_end = seq + 1
        self._note_send_time(self.fin_end, self.sim.now)
        if self.fin_end > self.snd_nxt:
            self.snd_nxt = self.fin_end
        if self.fin_end > self.snd_max:
            self.snd_max = self.fin_end
        if self._checker is not None:
            self._checker.note_sent(self, seq, self.fin_end, is_data=False)
        self.state = State.CLOSING
        self._trace(Kind.FIN, seq)
        self._trace(Kind.STATE, self.state.value)
        self._arm_rexmt()
        self._transmit(seg)

    def retransmit_first_unacked(self, reason: str = "fast") -> int:
        """Resend the segment at ``snd_una`` (fast/fine retransmission).

        Returns the retransmitted segment's starting sequence number.
        Called by congestion-control policies; the window decision is
        theirs, the mechanics are here.
        """
        data_end = self.sendbuf.queued_end
        if self.snd_una < data_end:
            length = min(self.mss, data_end - self.snd_una,
                         max(self.snd_max - self.snd_una, 0))
            if length <= 0:
                return self.snd_una
            seq = self.snd_una
            if reason.startswith("fine"):
                self.stats.fine_retransmits += 1
                self._trace(Kind.FINE_RETX, seq,
                            1 if reason == "fine-dupack" else 2)
            else:
                self.stats.fast_retransmits += 1
            self._send_data_segment(seq, length)
            return seq
        if self.fin_sent and not self.fin_acked:
            self._send_fin_again()
        return self.snd_una

    def retransmit_hole(self, seq: int, length: int,
                        reason: str = "sack") -> None:
        """Resend the un-SACKed chunk at *seq* (SACK-driven recovery).

        Unlike :meth:`retransmit_first_unacked`, the chunk may sit
        anywhere between ``snd_una`` and ``snd_max``.
        """
        length = min(length, self.mss,
                     max(0, self.sendbuf.queued_end - seq))
        if length <= 0 or seq < self.snd_una:
            return
        if reason == "sack":
            self.stats.fast_retransmits += 1
        self._send_data_segment(seq, length)

    def _send_fin_again(self) -> None:
        seq = self.sendbuf.queued_end
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         seq=seq, length=0, ack=self.recv.rcv_nxt,
                         flags=FLAG_ACK | FLAG_FIN, wnd=self.recv.rcv_wnd)
        self.recv.ack_sent()
        if self.fin_end is not None:
            self._note_send_time(self.fin_end, self.sim.now)
            self._ambiguous.add(self.fin_end)
        self._arm_rexmt()
        self._transmit(seg)

    def send_ack(self) -> None:
        """Send a pure ACK now (with SACK blocks when enabled)."""
        recv = self.recv
        seg = TCPSegment(self.flow.local_port, self.flow.remote_port,
                         self.snd_nxt, 0, recv.rcv_nxt, FLAG_ACK,
                         recv.rcv_wnd,
                         self._sack_blocks() if self.sack_enabled else ())
        self.recv.ack_sent()
        self._transmit(seg)
        # One echo (at least) per congestion mark.
        self._ece_pending = False

    def _transmit(self, seg: TCPSegment) -> None:
        if self.ecn_enabled and self._ece_pending and seg.flags & FLAG_ACK:
            seg.flags |= FLAG_ECE
        packet = Packet(self.flow.local_addr, self.flow.remote_addr,
                        seg, seg.wire_size, created_at=self.sim.now,
                        ecn_capable=self.ecn_enabled and seg.length > 0)
        self.protocol.host.send_packet(packet)

    # ------------------------------------------------------------------
    # Input path
    # ------------------------------------------------------------------
    def handle_segment(self, seg: TCPSegment, ecn_marked: bool = False) -> None:
        """Process an inbound segment addressed to this connection.

        ``ecn_marked`` reports that the carrying packet received a
        congestion mark in the network (set by the demultiplexer).
        """
        # Flag bits are tested directly (seg.flags & FLAG_*) on this
        # path: the syn/has_ack/fin properties cost a descriptor call
        # per test, which adds up at one segment per data event.
        flags = seg.flags
        if self.ecn_enabled and ecn_marked:
            self._ece_pending = True
        state = self.state
        if state == State.SYN_SENT:
            self._handle_syn_sent(seg)
            if self._checker is not None:
                self._checker.on_segment_processed(self)
            return
        if state == State.SYN_RCVD:
            if flags & FLAG_ACK and seg.ack >= self.iss + 1:
                self._become_established(seg)
                # Fall through: the segment may carry data too.
            elif flags & FLAG_SYN:
                # Our SYN-ACK was lost; resend it.
                self._send_syn(ack=True)
                return
        elif state == State.CLOSED:
            # Residual segments after close (e.g. a retransmitted FIN):
            # re-ACK so the peer can finish, then ignore.
            if seg.length > 0 or flags & FLAG_FIN:
                self.send_ack()
            return

        if flags & FLAG_ACK:
            self._process_ack(seg)

        delivered, action = self.recv.process_data(seg)
        if delivered and self.on_data is not None:
            self.on_data(self, delivered)
        self.stats.bytes_received += delivered

        fin_action = flags & FLAG_FIN and self._process_fin(seg)
        if fin_action or action is AckAction.NOW:
            self.send_ack()

        self._maybe_done()
        if self._checker is not None:
            self._checker.on_segment_processed(self)

    def _handle_syn_sent(self, seg: TCPSegment) -> None:
        if not (seg.syn and seg.has_ack and seg.ack == self.iss + 1):
            return  # simultaneous open unsupported; ignore
        self.recv.init_sequence(seg.seq + 1)
        self._note_ack_progress(seg.ack)
        self._become_established(seg)
        self.send_ack()
        self.output()

    def _become_established(self, seg: TCPSegment) -> None:
        self.state = State.ESTABLISHED
        self.stats.established_time = self.sim.now
        self.peer_wnd = seg.wnd
        self.peer_wnd_seen = True
        if seg.has_ack and seg.ack == self.iss + 1:
            self._note_ack_progress(seg.ack)
        self._trace(Kind.ESTABLISHED)
        self._trace(Kind.STATE, self.state.value)
        self.cc.on_established(self.sim.now)
        if self.on_established is not None:
            self.on_established(self)
        self.output()

    def _note_ack_progress(self, ack: int) -> None:
        """Minimal ack bookkeeping used during the handshake."""
        if ack <= self.snd_una or ack > self.snd_max:
            return
        if self._timing_seq is not None and ack > self._timing_seq:
            self.coarse_rtt.update(self._timing_ticks)
            self._timing_seq = None
        sample = self._fine_sample_for(ack)
        if sample is not None:
            # A SYN is 40 bytes on the wire; its RTT under-represents
            # the serialization a full data segment pays, so it feeds
            # the smoothed estimate but not BaseRTT.
            self.fine_rtt.update(sample, update_base=False)
            self.stats.note_rtt(sample)
        self._purge_send_times(ack)
        self.snd_una = ack
        if self._checker is not None:
            self._checker.on_ack(self, ack)
        self.rexmt_shift = 0
        self.consecutive_timeouts = 0
        if self.snd_una >= self.snd_max:
            self.t_rexmt = None
        else:
            self._arm_rexmt(force=True)

    def _process_ack(self, seg: TCPSegment) -> None:
        ack = seg.ack
        if ack > self.snd_max:
            return  # acks data never sent; ignore
        flags = seg.flags
        if self.ecn_enabled and flags & FLAG_ECE:
            self.ecn_echoes_received += 1
            self.cc.on_ecn_echo(self.sim.now)
        if self.sack_enabled and seg.sack:
            for start, end in seg.sack:
                self.sack_board.add(start, min(end, self.snd_max))
        seg_wnd = seg.wnd
        snd_una = self.snd_una
        if ack > snd_una:
            self.peer_wnd = seg_wnd
            self._handle_new_ack(ack, seg)
        elif (ack == snd_una and seg.length == 0
              and not flags & (FLAG_SYN | FLAG_FIN)
              and self.snd_nxt > snd_una
              and seg_wnd == self.peer_wnd):
            self.dupacks += 1
            self.stats.dup_acks_received += 1
            self._trace(Kind.DUPACK_RX, ack, self.dupacks)
            self.cc.on_dup_ack(self.dupacks, self.sim.now)
            self.output()
        else:
            self.peer_wnd = seg_wnd

    def _handle_new_ack(self, ack: int, seg: TCPSegment) -> None:
        now = self.sim.now
        stats = self.stats
        record = self.tracer.record
        acked = ack - self.snd_una
        stats.acks_received += 1
        record(now, Kind.ACK_RX, ack)
        # Coarse RTT sample (one timed segment at a time, Karn-guarded).
        if self._timing_seq is not None and ack > self._timing_seq:
            self.coarse_rtt.update(self._timing_ticks)
            self._timing_seq = None
        # Fine-grained RTT sample from per-segment clocks.  FIN-only
        # segments (40 bytes on the wire) are excluded from BaseRTT for
        # the same reason SYNs are: they pay less serialization than a
        # data segment and would read as an impossibly good path.
        sample = self._fine_sample_for(ack)
        if sample is not None:
            is_fin_sample = (self.fin_end is not None and ack == self.fin_end
                             and self.sendbuf.queued_end < ack)
            # A persist probe's RTT is measured through a zero-window
            # stall; like SYN/FIN samples it feeds the smoothed
            # estimator but must not lower BaseRTT, and congestion
            # control never sees it.
            is_probe_sample = ack in self._probe_ends
            self.fine_rtt.update(
                sample, update_base=not (is_fin_sample or is_probe_sample))
            stats.note_rtt(sample)
            record(now, Kind.RTT_SAMPLE, sample * 1e6)
            if is_fin_sample or is_probe_sample:
                sample = None
        self._purge_send_times(ack)
        self.snd_una = ack
        if self.snd_nxt < ack:
            # After a timeout rolled snd_nxt back, an ACK for the
            # original (pre-rollback) transmissions can pass it; pull
            # snd_nxt forward so the flight never goes negative (the
            # same guard 4.3 BSD applies after ACK processing).
            self.snd_nxt = ack
        if self._checker is not None:
            self._checker.on_ack(self, ack)
        self.sack_board.advance_to(ack)
        freed = self.sendbuf.ack_to(ack)
        if freed:
            stats.app_bytes_acked += freed
            stats.last_ack_time = now
        if self.fin_sent and self.fin_end is not None and ack >= self.fin_end:
            self.fin_acked = True
            stats.last_ack_time = now
        self.dupacks = 0
        self.rexmt_shift = 0
        self.consecutive_timeouts = 0
        self.cc.on_new_ack(acked, now, sample)
        if ack >= self.snd_max:
            self.t_rexmt = None
        else:
            self._arm_rexmt(force=True)
        record(now, Kind.SND_WND, min(self.sendbuf.capacity, self.peer_wnd))
        record(now, Kind.FLIGHT, self.snd_nxt - self.snd_una)
        self.output()
        if freed and self.on_send_space is not None:
            self.on_send_space(self)

    def _process_fin(self, seg: TCPSegment) -> bool:
        """Handle an in-order FIN; returns True if it was consumed."""
        if not seg.fin or self.peer_fin:
            return False
        fin_seq = seg.seq + seg.length
        if fin_seq != self.recv.rcv_nxt:
            return False  # out of order; peer will retransmit
        self.recv.reasm.rcv_nxt += 1
        self.peer_fin = True
        if self.on_peer_fin is not None:
            self.on_peer_fin(self)
        else:
            self.close()
        return True

    def _maybe_done(self) -> None:
        if (self.fin_acked and self.peer_fin
                and self.state != State.CLOSED):
            self.state = State.CLOSED
            self.t_rexmt = None
            self.stats.close_time = self.sim.now
            self._trace(Kind.STATE, self.state.value)
            self.protocol.connection_closed(self)
            if self.on_closed is not None:
                self.on_closed(self)

    # ------------------------------------------------------------------
    # Fine-grained clock bookkeeping (§3.1)
    # ------------------------------------------------------------------
    def _fine_sample_for(self, ack: int) -> Optional[float]:
        """Exact RTT for the segment whose end is *ack*, if unambiguous."""
        ts = self._send_times.get(ack)
        if ts is None or ack in self._ambiguous:
            return None
        return self.sim.now - ts

    def _note_send_time(self, end_seq: int, now: float) -> None:
        """Record a transmit clock, keeping the end-seq heap in sync.

        Retransmissions refresh the clock of an end_seq that is already
        indexed; only genuinely new keys enter the heap, so heap and
        dict always hold exactly the same key set.
        """
        if end_seq not in self._send_times:
            heapq.heappush(self._ends_heap, end_seq)
        self._send_times[end_seq] = now

    def _purge_send_times(self, ack: int) -> None:
        # The heap's top is the smallest outstanding end_seq, so the
        # cumulative ACK peels covered entries in O(log n) each — the
        # seed scanned the whole dict per ACK, O(window) on every ack.
        heap = self._ends_heap
        send_times = self._send_times
        while heap and heap[0] <= ack:
            k = heapq.heappop(heap)
            del send_times[k]
            self._ambiguous.discard(k)
            self._probe_ends.discard(k)

    def first_unacked_send_time(self) -> Optional[float]:
        """Latest transmit time of the segment containing ``snd_una``.

        This is the clock Vegas reads when a duplicate ACK arrives: if
        ``now - send_time > fine RTO`` the segment is declared lost
        without waiting for three duplicates.
        """
        # snd_una only advances through the purge paths, so the heap's
        # top is normally already > snd_una; the lazy pop is a
        # defensive sweep that keeps the invariant even if a caller
        # moved snd_una directly.
        heap = self._ends_heap
        una = self.snd_una
        while heap and heap[0] <= una:
            k = heapq.heappop(heap)
            self._send_times.pop(k, None)
            self._ambiguous.discard(k)
            self._probe_ends.discard(k)
        if not heap:
            return None
        return self._send_times[heap[0]]

    # ------------------------------------------------------------------
    # Timers (driven by the host protocol's periodic timers)
    # ------------------------------------------------------------------
    def slow_tick(self) -> None:
        """One 500 ms coarse-timer tick (the Figure-2 'diamond')."""
        if self.state == State.CLOSED:
            return
        self._trace(Kind.TIMER_CHECK,
                    self.t_rexmt if self.t_rexmt is not None else -1)
        if self._timing_seq is not None:
            self._timing_ticks += 1
        if self.t_rexmt is not None:
            self.t_rexmt -= 1
            if self.t_rexmt <= 0:
                self._coarse_timeout()
        self._maybe_persist_probe()

    def fast_tick(self) -> None:
        """One 200 ms fast-timer tick: flush a pending delayed ACK."""
        if self.state == State.CLOSED:
            return
        if self.recv.delack_pending:
            self.send_ack()

    def needs_coarse_timers(self) -> bool:
        """False only when the host's periodic timers have no work here.

        Used by the protocol's opt-in idle suppression: a connection
        is quiescent when it is established with nothing in flight,
        nothing queued, no retransmit countdown, and no delayed ACK
        pending.  Everything else (handshake, FIN exchange, zero-window
        persist) conservatively keeps the timers running.
        """
        return (self.state != State.ESTABLISHED
                or self.t_rexmt is not None
                or self.snd_nxt != self.snd_una
                or self.sendbuf.queued_end != self.snd_nxt
                or self.fin_pending
                or self.recv.delack_pending)

    def _arm_rexmt(self, force: bool = False) -> None:
        if self.t_rexmt is None or force:
            self.t_rexmt = self.coarse_rtt.backed_off_rto(self.rexmt_shift)

    def _coarse_timeout(self) -> None:
        self.stats.coarse_timeouts += 1
        self._trace(Kind.COARSE_TIMEOUT, self.snd_una)
        self.consecutive_timeouts += 1
        if self.consecutive_timeouts > C.MAX_REXMT_SHIFT:
            self._abort()
            return
        self.rexmt_shift = min(self.rexmt_shift + 1, C.MAX_REXMT_SHIFT)
        self._timing_seq = None  # Karn
        self.dupacks = 0
        self.cc.on_coarse_timeout(self.sim.now)
        self._arm_rexmt(force=True)
        if self.state in (State.SYN_SENT, State.SYN_RCVD):
            self._send_syn(ack=(self.state == State.SYN_RCVD))
            return
        # Go back to the first unacknowledged byte; with cwnd reset to
        # one segment, output() resends exactly one segment.
        self.snd_nxt = self.snd_una
        if self.snd_una >= self.sendbuf.queued_end and self.fin_sent:
            self._send_fin_again()
        else:
            self.output()

    def _pacing_blocked(self) -> bool:
        """True when pacing defers transmission; reschedules output."""
        rate = self.cc.pacing_rate()
        if rate is None or self.sim.now >= self._pace_next_time:
            return False
        if self._pace_event is None:
            self._pace_event = self.sim.schedule(
                self._pace_next_time - self.sim.now, self._pace_fire)
        return True

    def _pace_fire(self) -> None:
        # Null the handle first: a fired Event is dead (its object may
        # be recycled by the engine's pool), so holding it would both
        # pin a stale args tuple and make any later liveness check on
        # it meaningless.  `is None` is the only valid pending test.
        self._pace_event = None
        self.output()

    def _pacing_charge(self, length: int) -> None:
        """Advance the pacing clock after sending *length* bytes."""
        rate = self.cc.pacing_rate()
        if rate is None or rate <= 0:
            return
        base = max(self._pace_next_time, self.sim.now)
        self._pace_next_time = base + length / rate

    def _abort(self) -> None:
        """Give up after too many fruitless retransmissions (BSD-style)."""
        self.aborted = True
        self.state = State.CLOSED
        self.t_rexmt = None
        self.stats.close_time = self.sim.now
        self._trace(Kind.STATE, self.state.value)
        self.protocol.connection_closed(self)
        if self.on_closed is not None:
            self.on_closed(self)

    def _maybe_persist_probe(self) -> None:
        """Zero-window persist probes with BSD-style exponential backoff.

        The seed sent one probe per 500 ms slow tick forever.  Real BSD
        backs the persist interval off exponentially (TCPTV_PERSMIN up
        to TCPTV_PERSMAX); here the countdown doubles per probe, capped
        at :data:`~repro.tcp.constants.MAX_PERSIST_TICKS`.  Leaving
        persist (window opened, or nothing left to send) resets the
        backoff so the next stall starts probing promptly again.
        """
        if (self.state not in (State.ESTABLISHED, State.CLOSING)
                or self.peer_wnd != 0 or self.unsent_bytes() <= 0):
            self._persist_shift = 0
            self._persist_countdown = 0
            return
        if self.flight_size() > 0:
            # An earlier probe (or data) is still unacknowledged; the
            # retransmit machinery owns it.  Backoff state is kept.
            return
        if self._persist_countdown > 0:
            self._persist_countdown -= 1
            return
        seq = self.snd_nxt
        self.stats.persist_probes += 1
        self._trace(Kind.PROBE, seq, self._persist_shift)
        self._send_data_segment(seq, 1, probe=True)
        self._persist_countdown = min(1 << self._persist_shift,
                                      C.MAX_PERSIST_TICKS)
        self._persist_shift = min(self._persist_shift + 1,
                                  C.MAX_REXMT_SHIFT)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _trace(self, kind: Kind, a: float = 0.0, b: float = 0.0) -> None:
        self.tracer.record(self.sim.now, kind, a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TCPConnection({self.flow}, {self.state.name}, "
                f"una={self.snd_una}, nxt={self.snd_nxt}, "
                f"cwnd={self.cc.cwnd})")
