"""Per-host TCP protocol instance.

One :class:`TCPProtocol` sits on each host.  It demultiplexes inbound
packets to connections, accepts new connections for listening ports,
allocates ephemeral ports, and drives every connection's coarse
machinery from the host-wide BSD timers: a 500 ms *slow* timer
(retransmission bookkeeping — the "diamonds" in the paper's trace
graphs) and a 200 ms *fast* timer (delayed ACKs).  Timer phases are
randomised per host so hosts do not tick in lock-step, mirroring real
machines whose clocks are not synchronised.
"""

from __future__ import annotations

import os
import random
import zlib
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.addresses import FlowId
from repro.net.node import Host
from repro.net.packet import Packet
from repro.tcp import constants as C
from repro.tcp.connection import TCPConnection
from repro.tcp.segment import TCPSegment
from repro.trace.tracer import ConnectionTracer

CCFactory = Callable[[], "object"]
ConnKey = Tuple[int, str, int]  # (local port, remote addr, remote port)

#: Environment switch turning idle timer suppression on by default for
#: protocols constructed without an explicit ``idle_timer_suppression``
#: argument.  Opt-in: suppressed ticks change ``events_processed`` (and
#: re-armed timers lose phase alignment), so runs with this enabled are
#: excluded from the bit-identical regression gate.
IDLE_SUPPRESS_ENV = "REPRO_IDLE_SUPPRESS"


def idle_suppression_default() -> bool:
    """True when the environment enables idle timer suppression."""
    return os.environ.get(IDLE_SUPPRESS_ENV, "") not in ("", "0")


class Listener:
    """A passive-open registration on one port."""

    def __init__(self, port: int, cc_factory: CCFactory,
                 on_accept: Optional[Callable[[TCPConnection], None]],
                 options: dict):
        self.port = port
        self.cc_factory = cc_factory
        self.on_accept = on_accept
        self.options = options
        self.accepted = 0


class TCPProtocol:
    """TCP stack for one host."""

    def __init__(self, host: Host, rng: Optional[random.Random] = None,
                 slow_tick: float = C.SLOW_TICK,
                 fast_tick: float = C.FAST_TICK,
                 idle_timer_suppression: Optional[bool] = None):
        from repro.sim.process import PeriodicTimer

        self.host = host
        self.sim = host.sim
        if idle_timer_suppression is None:
            idle_timer_suppression = idle_suppression_default()
        self.idle_timer_suppression = idle_timer_suppression
        # True while the periodic timers are parked because every
        # connection is quiescent; any activity re-arms them.
        self._suppressed = False
        # Default seed from a *stable* hash of the host name: Python's
        # builtin hash() is randomized per process and would make runs
        # unreproducible across invocations.
        self.rng = rng if rng is not None else random.Random(
            zlib.crc32(host.name.encode()))
        host.protocol_handler = self._packet_arrived
        self.connections: Dict[ConnKey, TCPConnection] = {}
        self.listeners: Dict[int, Listener] = {}
        self._next_port = 1024
        self._slow = PeriodicTimer(self.sim, slow_tick, self._slow_tick,
                                   phase=self.rng.uniform(0.0, slow_tick))
        self._fast = PeriodicTimer(self.sim, fast_tick, self._fast_tick,
                                   phase=self.rng.uniform(0.0, fast_tick))
        self.segments_demuxed = 0
        self.segments_dropped = 0

    # ------------------------------------------------------------------
    # Opening connections
    # ------------------------------------------------------------------
    def connect(self, remote_addr: str, remote_port: int,
                cc: "object" = None,
                local_port: Optional[int] = None,
                mss: int = C.DEFAULT_MSS,
                sndbuf: int = C.DEFAULT_SOCKBUF,
                rcvbuf: int = C.DEFAULT_SOCKBUF,
                tracer: Optional[ConnectionTracer] = None,
                nagle: bool = True,
                delayed_acks: bool = True,
                sack: bool = False,
                ecn: bool = False) -> TCPConnection:
        """Actively open a connection; returns the new endpoint.

        ``cc`` may be a :class:`~repro.core.base.CongestionControl`
        instance (used directly) or a zero-argument factory.  ``None``
        selects Reno, the era's default.
        """
        cc_instance = self._make_cc(cc)
        if local_port is None:
            local_port = self._allocate_port()
        flow = FlowId(self.host.name, local_port, remote_addr, remote_port)
        key = (local_port, remote_addr, remote_port)
        if key in self.connections:
            raise ConfigurationError(f"connection {flow} already exists")
        conn = TCPConnection(self, flow, cc_instance, mss=mss, sndbuf=sndbuf,
                             rcvbuf=rcvbuf, tracer=tracer, nagle=nagle,
                             delayed_acks=delayed_acks, sack=sack, ecn=ecn)
        self.connections[key] = conn
        self._ensure_timers()
        conn.open_active()
        return conn

    def listen(self, port: int, cc: "object" = None,
               on_accept: Optional[Callable[[TCPConnection], None]] = None,
               **options) -> Listener:
        """Register a passive open on *port*.

        ``on_accept(conn)`` is invoked for each new connection before
        its SYN is processed, so applications can install callbacks.
        Keyword *options* (mss, sndbuf, rcvbuf, tracer, nagle) are
        applied to accepted connections.
        """
        if port in self.listeners:
            raise ConfigurationError(
                f"port {port} already listening on {self.host.name}")
        listener = Listener(port, self._cc_factory(cc), on_accept, options)
        self.listeners[port] = listener
        return listener

    def _make_cc(self, cc: "object"):
        from repro.core.base import CongestionControl
        from repro.core.reno import RenoCC

        if cc is None:
            return RenoCC()
        if isinstance(cc, CongestionControl):
            return cc
        if callable(cc):
            return cc()
        raise ConfigurationError(
            f"cc must be a CongestionControl or a factory, got {cc!r}")

    def _cc_factory(self, cc: "object") -> CCFactory:
        from repro.core.base import CongestionControl
        from repro.core.reno import RenoCC

        if cc is None:
            return RenoCC
        if isinstance(cc, CongestionControl):
            raise ConfigurationError(
                "listen() needs a CC factory (class or callable), not an "
                "instance — each accepted connection gets its own controller")
        if callable(cc):
            return cc
        raise ConfigurationError(
            f"cc must be a factory (class or callable), got {cc!r}")

    def _allocate_port(self) -> int:
        while self._next_port in self.listeners:
            self._next_port += 1
        port = self._next_port
        self._next_port += 1
        return port

    # ------------------------------------------------------------------
    # Demultiplexing
    # ------------------------------------------------------------------
    def _packet_arrived(self, packet: Packet) -> None:
        # Hot path: every inbound segment on the host passes through
        # here.  The common case — an established connection — is one
        # dict probe and a branch; listener/unknown handling is pushed
        # behind it.
        seg = packet.payload
        if type(seg) is not TCPSegment and not isinstance(seg, TCPSegment):
            self.segments_dropped += 1
            return
        conn = self.connections.get((seg.dst_port, packet.src, seg.src_port))
        if conn is not None:
            self.segments_demuxed += 1
            if self._suppressed:
                self._ensure_timers()
            conn.handle_segment(seg, ecn_marked=packet.ecn_marked)
            return
        if self._suppressed:
            self._ensure_timers()
        if seg.syn and not seg.has_ack:
            listener = self.listeners.get(seg.dst_port)
            if listener is not None:
                self._accept(listener, packet, seg)
                return
        self.segments_dropped += 1

    def _accept(self, listener: Listener, packet: Packet, seg: TCPSegment) -> None:
        flow = FlowId(self.host.name, seg.dst_port, packet.src, seg.src_port)
        key = (seg.dst_port, packet.src, seg.src_port)
        conn = TCPConnection(self, flow, listener.cc_factory(),
                             **listener.options)
        self.connections[key] = conn
        listener.accepted += 1
        self._ensure_timers()
        if listener.on_accept is not None:
            listener.on_accept(conn)
        conn.open_passive(seg)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _ensure_timers(self) -> None:
        self._suppressed = False
        if not self._slow.running:
            self._slow.start()
        if not self._fast.running:
            self._fast.start()

    def notify_activity(self) -> None:
        """Re-arm suppressed timers; called on application sends."""
        if self._suppressed:
            self._ensure_timers()

    def _slow_tick(self) -> None:
        active = False
        idle = True
        for conn in list(self.connections.values()):
            if not conn.is_closed:
                conn.slow_tick()
                if not conn.is_closed:
                    active = True
                    if idle and conn.needs_coarse_timers():
                        idle = False
        if not active:
            self._stop_timers()
        elif idle and self.idle_timer_suppression:
            # Every connection is quiescent: park both timers instead
            # of ticking through the idle period.  Any inbound segment
            # or application send re-arms them (see _packet_arrived /
            # notify_activity).  Opt-in — this changes event counts.
            self._suppress_timers()

    def _fast_tick(self) -> None:
        for conn in list(self.connections.values()):
            if not conn.is_closed:
                conn.fast_tick()

    def _stop_timers(self) -> None:
        self._suppressed = False
        self._slow.stop()
        self._fast.stop()

    def _suppress_timers(self) -> None:
        self._slow.suspend()
        self._fast.suspend()
        self._suppressed = True

    def connection_closed(self, conn: TCPConnection) -> None:
        """Hook called by connections reaching CLOSED; stops timers when idle."""
        if all(c.is_closed for c in self.connections.values()):
            self._stop_timers()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def connection_list(self):
        return list(self.connections.values())
