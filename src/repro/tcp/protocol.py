"""Per-host TCP protocol instance.

One :class:`TCPProtocol` sits on each host.  It demultiplexes inbound
packets to connections, accepts new connections for listening ports,
allocates ephemeral ports, and drives every connection's coarse
machinery from the host-wide BSD timers: a 500 ms *slow* timer
(retransmission bookkeeping — the "diamonds" in the paper's trace
graphs) and a 200 ms *fast* timer (delayed ACKs).  Timer phases are
randomised per host so hosts do not tick in lock-step, mirroring real
machines whose clocks are not synchronised.
"""

from __future__ import annotations

import os
import random
import zlib
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.addresses import FlowId
from repro.net.node import Host
from repro.net.packet import Packet
from repro.tcp import constants as C
from repro.tcp.connection import TCPConnection
from repro.tcp.flatstate import store_for
from repro.tcp.segment import TCPSegment
from repro.trace.records import Kind
from repro.trace.tracer import NULL_TRACER, ConnectionTracer

CCFactory = Callable[[], "object"]
ConnKey = Tuple[int, str, int]  # (local port, remote addr, remote port)

#: Environment switch turning idle timer suppression on by default for
#: protocols constructed without an explicit ``idle_timer_suppression``
#: argument.  Opt-in: suppressed ticks change ``events_processed`` (and
#: re-armed timers lose phase alignment), so runs with this enabled are
#: excluded from the bit-identical regression gate.
IDLE_SUPPRESS_ENV = "REPRO_IDLE_SUPPRESS"


def idle_suppression_default() -> bool:
    """True when the environment enables idle timer suppression."""
    return os.environ.get(IDLE_SUPPRESS_ENV, "") not in ("", "0")


class Listener:
    """A passive-open registration on one port."""

    def __init__(self, port: int, cc_factory: CCFactory,
                 on_accept: Optional[Callable[[TCPConnection], None]],
                 options: dict):
        self.port = port
        self.cc_factory = cc_factory
        self.on_accept = on_accept
        self.options = options
        self.accepted = 0


class TCPProtocol:
    """TCP stack for one host."""

    def __init__(self, host: Host, rng: Optional[random.Random] = None,
                 slow_tick: float = C.SLOW_TICK,
                 fast_tick: float = C.FAST_TICK,
                 idle_timer_suppression: Optional[bool] = None):
        from repro.sim.process import PeriodicTimer

        self.host = host
        self.sim = host.sim
        if idle_timer_suppression is None:
            idle_timer_suppression = idle_suppression_default()
        self.idle_timer_suppression = idle_timer_suppression
        # True while the periodic timers are parked because every
        # connection is quiescent; any activity re-arms them.
        self._suppressed = False
        # Default seed from a *stable* hash of the host name: Python's
        # builtin hash() is randomized per process and would make runs
        # unreproducible across invocations.
        self.rng = rng if rng is not None else random.Random(
            zlib.crc32(host.name.encode()))
        host.protocol_handler = self._packet_arrived
        self.connections: Dict[ConnKey, TCPConnection] = {}
        # Open (not-yet-closed) subset of ``connections``, in the same
        # insertion order.  The periodic timer scans iterate this dict
        # instead of every connection ever created — a long-running
        # host accumulates closed conversations in ``connections`` (the
        # demux keeps them for residual-segment re-ACKs), and ticking
        # through thousands of corpses per 200 ms fast tick used to
        # dominate heavy-traffic runs.  Entries leave via
        # :meth:`connection_closed`; closure is terminal, so the
        # surviving iteration order matches the old filtered scan.
        self._open: Dict[ConnKey, TCPConnection] = {}
        # Shared flat-state store backing every connection of this
        # simulator (see repro.tcp.flatstate): the periodic scans below
        # read the timer/window columns straight out of its packed
        # arrays.  ``None`` on the REPRO_ENGINE_SLOWPATH object path,
        # where each connection owns a private store and the scans fall
        # back to the per-connection methods.
        self._flat = store_for(self.sim) if getattr(self.sim, "_fast", True) \
            else None
        self.listeners: Dict[int, Listener] = {}
        self._next_port = 1024
        self._slow = PeriodicTimer(self.sim, slow_tick, self._slow_tick,
                                   phase=self.rng.uniform(0.0, slow_tick))
        self._fast = PeriodicTimer(self.sim, fast_tick, self._fast_tick,
                                   phase=self.rng.uniform(0.0, fast_tick))
        self.segments_demuxed = 0
        self.segments_dropped = 0

    # ------------------------------------------------------------------
    # Opening connections
    # ------------------------------------------------------------------
    def connect(self, remote_addr: str, remote_port: int,
                cc: "object" = None,
                local_port: Optional[int] = None,
                mss: int = C.DEFAULT_MSS,
                sndbuf: int = C.DEFAULT_SOCKBUF,
                rcvbuf: int = C.DEFAULT_SOCKBUF,
                tracer: Optional[ConnectionTracer] = None,
                nagle: bool = True,
                delayed_acks: bool = True,
                sack: bool = False,
                ecn: bool = False) -> TCPConnection:
        """Actively open a connection; returns the new endpoint.

        ``cc`` may be a :class:`~repro.core.base.CongestionControl`
        instance (used directly) or a zero-argument factory.  ``None``
        selects Reno, the era's default.
        """
        cc_instance = self._make_cc(cc)
        if local_port is None:
            local_port = self._allocate_port()
        flow = FlowId(self.host.name, local_port, remote_addr, remote_port)
        key = (local_port, remote_addr, remote_port)
        if key in self.connections:
            raise ConfigurationError(f"connection {flow} already exists")
        conn = TCPConnection(self, flow, cc_instance, mss=mss, sndbuf=sndbuf,
                             rcvbuf=rcvbuf, tracer=tracer, nagle=nagle,
                             delayed_acks=delayed_acks, sack=sack, ecn=ecn)
        self.connections[key] = conn
        self._open[key] = conn
        self._ensure_timers()
        conn.open_active()
        return conn

    def listen(self, port: int, cc: "object" = None,
               on_accept: Optional[Callable[[TCPConnection], None]] = None,
               **options) -> Listener:
        """Register a passive open on *port*.

        ``on_accept(conn)`` is invoked for each new connection before
        its SYN is processed, so applications can install callbacks.
        Keyword *options* (mss, sndbuf, rcvbuf, tracer, nagle) are
        applied to accepted connections.
        """
        if port in self.listeners:
            raise ConfigurationError(
                f"port {port} already listening on {self.host.name}")
        listener = Listener(port, self._cc_factory(cc), on_accept, options)
        self.listeners[port] = listener
        return listener

    def _make_cc(self, cc: "object"):
        from repro.core.base import CongestionControl
        from repro.core.reno import RenoCC

        if cc is None:
            return RenoCC()
        if isinstance(cc, CongestionControl):
            return cc
        if callable(cc):
            return cc()
        raise ConfigurationError(
            f"cc must be a CongestionControl or a factory, got {cc!r}")

    def _cc_factory(self, cc: "object") -> CCFactory:
        from repro.core.base import CongestionControl
        from repro.core.reno import RenoCC

        if cc is None:
            return RenoCC
        if isinstance(cc, CongestionControl):
            raise ConfigurationError(
                "listen() needs a CC factory (class or callable), not an "
                "instance — each accepted connection gets its own controller")
        if callable(cc):
            return cc
        raise ConfigurationError(
            f"cc must be a factory (class or callable), got {cc!r}")

    def _allocate_port(self) -> int:
        while self._next_port in self.listeners:
            self._next_port += 1
        port = self._next_port
        self._next_port += 1
        return port

    # ------------------------------------------------------------------
    # Demultiplexing
    # ------------------------------------------------------------------
    def _packet_arrived(self, packet: Packet) -> None:
        # Hot path: every inbound segment on the host passes through
        # here.  The common case — an established connection — is one
        # dict probe and a branch; listener/unknown handling is pushed
        # behind it.
        seg = packet.payload
        if type(seg) is not TCPSegment and not isinstance(seg, TCPSegment):
            self.segments_dropped += 1
            return
        conn = self.connections.get((seg.dst_port, packet.src, seg.src_port))
        if conn is not None:
            self.segments_demuxed += 1
            if self._suppressed:
                self._ensure_timers()
            conn.handle_segment(seg, ecn_marked=packet.ecn_marked)
            return
        if self._suppressed:
            self._ensure_timers()
        if seg.syn and not seg.has_ack:
            listener = self.listeners.get(seg.dst_port)
            if listener is not None:
                self._accept(listener, packet, seg)
                return
        self.segments_dropped += 1

    def _accept(self, listener: Listener, packet: Packet, seg: TCPSegment) -> None:
        flow = FlowId(self.host.name, seg.dst_port, packet.src, seg.src_port)
        key = (seg.dst_port, packet.src, seg.src_port)
        conn = TCPConnection(self, flow, listener.cc_factory(),
                             **listener.options)
        self.connections[key] = conn
        self._open[key] = conn
        listener.accepted += 1
        self._ensure_timers()
        if listener.on_accept is not None:
            listener.on_accept(conn)
        conn.open_passive(seg)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _ensure_timers(self) -> None:
        self._suppressed = False
        if not self._slow.running:
            self._slow.start()
        if not self._fast.running:
            self._fast.start()

    def notify_activity(self) -> None:
        """Re-arm suppressed timers; called on application sends."""
        if self._suppressed:
            self._ensure_timers()

    def _slow_tick(self) -> None:
        if self._flat is None or self.idle_timer_suppression:
            self._slow_tick_objects()
            return
        # Flat scan: the per-connection slow_tick() sequence performed
        # directly on the shared store's columns.  Calls back into the
        # connection only for the rare events (timeout fired, persist
        # probe due); the per-tick common case touches a handful of
        # array cells per open connection.
        st = self._flat
        state_code = st.state_code
        t_rexmt = st.t_rexmt
        timing_seq = st.timing_seq
        timing_ticks = st.timing_ticks
        peer_wnd = st.peer_wnd
        snd_nxt = st.snd_nxt
        snd_una = st.snd_una
        persist_shift = st.persist_shift
        persist_countdown = st.persist_countdown
        now = self.sim.now
        timer_check = Kind.TIMER_CHECK
        for conn in list(self._open.values()):
            i = conn._slot
            # A connection ticked earlier in this scan may have closed
            # a later one (e.g. an abort tearing down its peer):
            # CLOSED (code 0) slots are skipped, exactly as the
            # per-object tick returns immediately for them.
            if state_code[i] == 0:
                continue
            t = t_rexmt[i]
            tracer = conn.tracer
            if tracer is not NULL_TRACER:
                tracer.record(now, timer_check, t)  # -1 == "unarmed"
            if timing_seq[i] >= 0:
                timing_ticks[i] += 1
            if t >= 0:
                t -= 1
                t_rexmt[i] = t
                if t <= 0:
                    conn._coarse_timeout()
            # Zero-window persist (the _maybe_persist_probe sequence;
            # state re-read because a timeout above may have closed or
            # aborted the connection mid-tick).
            sc = state_code[i]
            if ((sc != 3 and sc != 4)  # ESTABLISHED / CLOSING
                    or peer_wnd[i] != 0
                    or conn.sendbuf.queued_end - snd_nxt[i] <= 0):
                persist_shift[i] = 0
                persist_countdown[i] = 0
            elif snd_nxt[i] - snd_una[i] > 0:
                pass  # probe or data already outstanding
            elif persist_countdown[i] > 0:
                persist_countdown[i] -= 1
            else:
                conn._persist_fire()
        if not self._open:
            self._stop_timers()

    def _slow_tick_objects(self) -> None:
        """Per-object slow-timer scan (slow path and idle suppression)."""
        idle = True
        for conn in list(self._open.values()):
            # A connection ticked earlier in this scan may have closed
            # a later one (e.g. an abort tearing down its peer), so
            # each snapshot entry is re-checked before ticking.
            if not conn.is_closed:
                conn.slow_tick()
                if idle and not conn.is_closed and conn.needs_coarse_timers():
                    idle = False
        if not self._open:
            self._stop_timers()
        elif idle and self.idle_timer_suppression:
            # Every connection is quiescent: park both timers instead
            # of ticking through the idle period.  Any inbound segment
            # or application send re-arms them (see _packet_arrived /
            # notify_activity).  Opt-in — this changes event counts.
            self._suppress_timers()

    def _fast_tick(self) -> None:
        if self._flat is None:
            for conn in list(self._open.values()):
                if not conn.is_closed:
                    conn.fast_tick()
            return
        state_code = self._flat.state_code
        delack = self._flat.delack
        for conn in list(self._open.values()):
            i = conn._slot
            if state_code[i] != 0 and delack[i]:
                conn.send_ack()

    def _stop_timers(self) -> None:
        self._suppressed = False
        self._slow.stop()
        self._fast.stop()

    def _suppress_timers(self) -> None:
        self._slow.suspend()
        self._fast.suspend()
        self._suppressed = True

    def connection_closed(self, conn: TCPConnection) -> None:
        """Hook called by connections reaching CLOSED; stops timers when idle."""
        flow = conn.flow
        self._open.pop((flow.local_port, flow.remote_addr, flow.remote_port),
                       None)
        if not self._open:
            self._stop_timers()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def connection_list(self):
        return list(self.connections.values())
