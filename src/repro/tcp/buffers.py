"""Sender and receiver buffer models.

:class:`SendBuffer` tracks how much application data is queued but not
yet acknowledged, bounded by the socket send-buffer size — the knob the
paper sweeps in §4.3 ("Different TCP send-buffer sizes").

:class:`ReassemblyBuffer` is the receiver's out-of-order store: it
accepts segments in any order, coalesces intervals, and reports how far
the in-order prefix (``rcv_nxt``) advances.  Its occupancy shrinks the
advertised window, exactly like the BSD sockbuf.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError


class SendBuffer:
    """Accounting for unacknowledged application data at the sender.

    Sequence numbers are absolute.  ``una`` is the lowest unacked
    sequence number; ``queued_end`` is one past the last byte the
    application has queued.  The buffer accepts new application bytes
    only while ``queued_end - una`` stays within ``capacity``.
    """

    def __init__(self, capacity: int, start_seq: int = 0):
        if capacity < 1:
            raise ConfigurationError("send buffer capacity must be >= 1")
        self.capacity = capacity
        self.una = start_seq
        self.queued_end = start_seq

    @property
    def in_buffer(self) -> int:
        """Bytes currently held (queued but not yet acknowledged)."""
        return self.queued_end - self.una

    @property
    def space(self) -> int:
        """Bytes of application data the buffer can still accept."""
        return self.capacity - self.in_buffer

    def write(self, nbytes: int) -> int:
        """Queue up to *nbytes* of application data; return the accepted count."""
        if nbytes < 0:
            raise ValueError("cannot write a negative byte count")
        accepted = min(nbytes, self.space)
        self.queued_end += accepted
        return accepted

    def ack_to(self, seq: int) -> int:
        """Release bytes below *seq*; return how many were freed."""
        if seq < self.una:
            return 0
        seq = min(seq, self.queued_end)
        freed = seq - self.una
        self.una = seq
        return freed

    def rebase(self, start_seq: int) -> None:
        """Reset sequence bookkeeping (used when the ISS is chosen)."""
        if self.in_buffer:
            raise ConfigurationError("cannot rebase a non-empty send buffer")
        self.una = start_seq
        self.queued_end = start_seq


class ReassemblyBuffer:
    """Receiver-side out-of-order segment store.

    Intervals are kept sorted and disjoint.  ``add`` returns the number
    of bytes newly delivered in-order (i.e. how far ``rcv_nxt``
    advanced), which the receiver hands to the application.
    """

    def __init__(self, rcv_nxt: int = 0):
        self.rcv_nxt = rcv_nxt
        self._intervals: List[Tuple[int, int]] = []  # sorted, disjoint (start, end)

    @property
    def buffered_bytes(self) -> int:
        """Bytes held out of order (they consume advertised window)."""
        return sum(end - start for start, end in self._intervals)

    @property
    def has_gaps(self) -> bool:
        """True when out-of-order data is waiting for a hole to fill."""
        return bool(self._intervals)

    def add(self, seq: int, length: int) -> int:
        """Accept ``[seq, seq+length)``; return bytes newly in-order.

        Old (fully duplicate) data returns 0.  Partial overlap with the
        in-order prefix or with buffered intervals is trimmed.
        """
        if length < 0:
            raise ValueError("segment length must be non-negative")
        start, end = seq, seq + length
        if end <= self.rcv_nxt:
            return 0  # entirely old
        start = max(start, self.rcv_nxt)
        if start > self.rcv_nxt:
            # Out of order: merge into the interval list.
            self._insert(start, end)
            return 0
        # In-order (possibly trimmed): advance rcv_nxt, then pull any
        # buffered intervals that become contiguous.
        old_nxt = self.rcv_nxt
        self.rcv_nxt = end
        self._drain()
        return self.rcv_nxt - old_nxt

    def _insert(self, start: int, end: int) -> None:
        merged: List[Tuple[int, int]] = []
        placed = False
        for s, e in self._intervals:
            if e < start or s > end:
                if not placed and s > end:
                    merged.append((start, end))
                    placed = True
                merged.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        if not placed:
            merged.append((start, end))
            merged.sort()
        self._intervals = merged

    def _drain(self) -> None:
        while self._intervals and self._intervals[0][0] <= self.rcv_nxt:
            start, end = self._intervals.pop(0)
            if end > self.rcv_nxt:
                self.rcv_nxt = end

    def intervals(self) -> List[Tuple[int, int]]:
        """Snapshot of buffered out-of-order intervals (for tests)."""
        return list(self._intervals)
