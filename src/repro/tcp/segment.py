"""TCP segments.

Segments carry virtual data: a starting sequence number and a payload
length, never actual bytes.  SYN and FIN each consume one sequence
number, as in real TCP.  Sequence numbers are plain Python integers —
the library's transfers are far below wrap-around, and unbounded ints
keep the arithmetic transparent.
"""

from __future__ import annotations

from repro.tcp.constants import HEADER_BYTES

# Flag bits.
FLAG_SYN = 0x1
FLAG_ACK = 0x2
FLAG_FIN = 0x4
#: ECN-Echo: the receiver saw a congestion-marked packet (RFC 3168).
FLAG_ECE = 0x8


#: Bytes each SACK block adds to the wire (two 4-byte sequence numbers).
SACK_BLOCK_BYTES = 8

#: At most this many SACK blocks fit in the option space (RFC 1072/2018).
MAX_SACK_BLOCKS = 3


class TCPSegment:
    """One TCP segment (header fields only; data is a byte count).

    ``sack`` carries selective-acknowledgement blocks — the RFC 1072
    extension the paper's §6 discusses — as a tuple of ``(start, end)``
    byte ranges the receiver holds above the cumulative ACK.
    """

    __slots__ = ("src_port", "dst_port", "seq", "length", "ack", "flags",
                 "wnd", "sack")

    def __init__(self, src_port: int, dst_port: int, seq: int, length: int,
                 ack: int = 0, flags: int = 0, wnd: int = 0,
                 sack: tuple = ()):
        if length < 0:
            raise ValueError("segment length must be non-negative")
        if len(sack) > MAX_SACK_BLOCKS:
            raise ValueError(f"at most {MAX_SACK_BLOCKS} SACK blocks fit")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.length = length
        self.ack = ack
        self.flags = flags
        self.wnd = wnd
        self.sack = sack if type(sack) is tuple else tuple(sack)

    # ------------------------------------------------------------------
    # Flag helpers
    # ------------------------------------------------------------------
    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def ece(self) -> bool:
        return bool(self.flags & FLAG_ECE)

    # ------------------------------------------------------------------
    # Sequence space
    # ------------------------------------------------------------------
    @property
    def seq_consumed(self) -> int:
        """Sequence numbers consumed: payload plus SYN/FIN flags."""
        return self.length + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        """First sequence number *after* this segment."""
        return self.seq + self.seq_consumed

    @property
    def wire_size(self) -> int:
        """Bytes this segment occupies on the wire."""
        return HEADER_BYTES + self.length + SACK_BLOCK_BYTES * len(self.sack)

    def flag_names(self) -> str:
        names = []
        if self.syn:
            names.append("SYN")
        if self.has_ack:
            names.append("ACK")
        if self.fin:
            names.append("FIN")
        if self.ece:
            names.append("ECE")
        return "|".join(names) or "-"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TCPSegment({self.src_port}->{self.dst_port} "
                f"seq={self.seq} len={self.length} ack={self.ack} "
                f"{self.flag_names()} wnd={self.wnd})")
