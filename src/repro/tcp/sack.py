"""SACK scoreboard — sender-side bookkeeping for selective ACKs.

The paper's §6 discusses selective acknowledgements (RFC 1072/1323) as
the contemporary alternative to Vegas' retransmission mechanism; this
module implements the sender half so the two can be compared (and
combined).  The scoreboard records which byte ranges above ``snd_una``
the receiver has reported holding, answers "what is the first hole?",
and totals the SACKed bytes for pipe calculations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class SackScoreboard:
    """Disjoint, sorted intervals of selectively acknowledged bytes."""

    def __init__(self) -> None:
        self._blocks: List[Tuple[int, int]] = []

    def clear(self) -> None:
        self._blocks.clear()

    def add(self, start: int, end: int) -> None:
        """Record that ``[start, end)`` was reported received."""
        if end <= start:
            return
        merged: List[Tuple[int, int]] = []
        placed = False
        for s, e in self._blocks:
            if e < start or s > end:
                if not placed and s > end:
                    merged.append((start, end))
                    placed = True
                merged.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        if not placed:
            merged.append((start, end))
            merged.sort()
        self._blocks = merged

    def advance_to(self, snd_una: int) -> None:
        """Drop bookkeeping below the cumulative ACK point."""
        kept = []
        for s, e in self._blocks:
            if e <= snd_una:
                continue
            kept.append((max(s, snd_una), e))
        self._blocks = kept

    def sacked_bytes(self) -> int:
        return sum(e - s for s, e in self._blocks)

    def is_sacked(self, seq: int) -> bool:
        return any(s <= seq < e for s, e in self._blocks)

    def highest_sacked(self) -> Optional[int]:
        if not self._blocks:
            return None
        return self._blocks[-1][1]

    def next_hole(self, from_seq: int, mss: int) -> Optional[Tuple[int, int]]:
        """First un-SACKed ``(seq, length)`` chunk at or above *from_seq*.

        Holes only exist below the highest SACKed byte — data above it
        is simply unsent/unacked, not presumed lost.  Returns ``None``
        when there is no hole.
        """
        top = self.highest_sacked()
        if top is None or from_seq >= top:
            return None
        seq = from_seq
        for s, e in self._blocks:
            if seq < s:
                return seq, min(mss, s - seq)
            if seq < e:
                seq = e
        if seq < top:  # pragma: no cover - defensive; top is a block end
            return seq, mss
        return None

    def blocks(self) -> List[Tuple[int, int]]:
        return list(self._blocks)

    def __bool__(self) -> bool:
        return bool(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SackScoreboard({self._blocks})"
