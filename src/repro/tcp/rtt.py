"""Round-trip-time estimators.

Two estimators coexist, mirroring §3.1 of the paper:

* :class:`CoarseRttEstimator` — the BSD Reno estimator.  RTT is
  measured in 500 ms slow-timer ticks (one timed segment at a time,
  Karn's rule applied by the caller), smoothed with Jacobson/Karels
  gains, and clamped to a 2-tick (1 second) minimum RTO.  This is why
  the paper observed ~1100 ms recoveries where ~300 ms would do.

* :class:`FineRttEstimator` — Vegas' estimator.  The sender timestamps
  every segment with the system clock; samples are exact floats, the
  same smoothing applies, and the RTO floor is tiny.  Vegas uses this
  timeout for its check-on-duplicate-ACK retransmissions.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp import constants as C


class CoarseRttEstimator:
    """Jacobson/Karels smoothing over tick-granularity samples.

    All state is in units of slow-timer ticks.  ``rto_ticks`` already
    includes clamping but not exponential backoff — the connection
    applies its own backoff shift.
    """

    def __init__(self,
                 min_rto_ticks: int = C.MIN_RTO_TICKS,
                 max_rto_ticks: int = C.MAX_RTO_TICKS,
                 initial_rto_ticks: int = C.INITIAL_RTO_TICKS):
        self.min_rto_ticks = min_rto_ticks
        self.max_rto_ticks = max_rto_ticks
        self.srtt: Optional[float] = None   # smoothed RTT, ticks
        self.rttvar: float = 0.0            # mean deviation, ticks
        self.rto_ticks: int = initial_rto_ticks
        self.samples: int = 0

    def update(self, sample_ticks: float) -> None:
        """Fold one RTT sample (in ticks) into the estimate."""
        if sample_ticks < 0:
            raise ValueError("RTT sample must be non-negative")
        self.samples += 1
        if self.srtt is None:
            self.srtt = sample_ticks
            self.rttvar = sample_ticks / 2.0
        else:
            err = sample_ticks - self.srtt
            self.srtt += err / 8.0
            self.rttvar += (abs(err) - self.rttvar) / 4.0
        raw = self.srtt + max(1.0, 4.0 * self.rttvar)
        self.rto_ticks = int(min(self.max_rto_ticks,
                                 max(self.min_rto_ticks, round(raw))))

    def backed_off_rto(self, shift: int) -> int:
        """RTO in ticks after *shift* exponential backoffs."""
        return min(self.max_rto_ticks, self.rto_ticks << shift)


class FineRttEstimator:
    """Jacobson/Karels smoothing over exact (float-second) samples.

    Also tracks *BaseRTT*, the minimum RTT ever observed, which Vegas'
    congestion avoidance mechanism uses as the uncongested reference
    (§3.2: "Vegas sets BaseRTT to the minimum of all measured round
    trip times").
    """

    def __init__(self,
                 min_rto: float = C.MIN_FINE_RTO,
                 initial_rto: float = C.INITIAL_FINE_RTO):
        self.min_rto = min_rto
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.rto: float = initial_rto
        self.base_rtt: Optional[float] = None
        self.latest: Optional[float] = None
        self.samples: int = 0

    def update(self, sample: float, update_base: bool = True) -> None:
        """Fold one RTT sample (seconds) into the estimate and BaseRTT.

        ``update_base=False`` excludes the sample from BaseRTT; the
        connection uses this for handshake (SYN) samples, whose 40-byte
        segments pay far less serialization than data segments and
        would otherwise make every data RTT look congested.
        """
        if sample < 0:
            raise ValueError("RTT sample must be non-negative")
        self.samples += 1
        self.latest = sample
        if update_base and (self.base_rtt is None or sample < self.base_rtt):
            self.base_rtt = sample
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            err = sample - self.srtt
            self.srtt += err / 8.0
            self.rttvar += (abs(err) - self.rttvar) / 4.0
        self.rto = max(self.min_rto, self.srtt + 4.0 * self.rttvar)

    def set_base_rtt(self, value: float) -> None:
        """Override BaseRTT (Vegas does this when Actual > Expected)."""
        self.base_rtt = value
