"""Round-trip-time estimators.

Two estimators coexist, mirroring §3.1 of the paper:

* :class:`CoarseRttEstimator` — the BSD Reno estimator.  RTT is
  measured in 500 ms slow-timer ticks (one timed segment at a time,
  Karn's rule applied by the caller), smoothed with Jacobson/Karels
  gains, and clamped to a 2-tick (1 second) minimum RTO.  This is why
  the paper observed ~1100 ms recoveries where ~300 ms would do.

* :class:`FineRttEstimator` — Vegas' estimator.  The sender timestamps
  every segment with the system clock; samples are exact floats, the
  same smoothing applies, and the RTO floor is tiny.  Vegas uses this
  timeout for its check-on-duplicate-ACK retransmissions.

Both estimators keep their accumulators in a
:class:`~repro.tcp.flatstate.ConnStateStore` slot — the connection
passes its own store/slot so the smoothed state sits next to the rest
of the hot sender state; standalone construction (tests, tooling)
allocates a private one-slot store.  Absent values (``srtt`` before
the first sample, ``base_rtt``, ``latest``) are NaN in the store and
surface as ``None`` through the accessor properties, so the public
API is unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp import constants as C
from repro.tcp.flatstate import ConnStateStore


class CoarseRttEstimator:
    """Jacobson/Karels smoothing over tick-granularity samples.

    All state is in units of slow-timer ticks.  ``rto_ticks`` already
    includes clamping but not exponential backoff — the connection
    applies its own backoff shift.
    """

    __slots__ = ("min_rto_ticks", "max_rto_ticks", "_st", "_i")

    def __init__(self,
                 min_rto_ticks: int = C.MIN_RTO_TICKS,
                 max_rto_ticks: int = C.MAX_RTO_TICKS,
                 initial_rto_ticks: int = C.INITIAL_RTO_TICKS,
                 store: Optional[ConnStateStore] = None,
                 slot: int = 0):
        if store is None:
            store = ConnStateStore()
            slot = store.alloc()
        self._st = store
        self._i = slot
        self.min_rto_ticks = min_rto_ticks
        self.max_rto_ticks = max_rto_ticks
        store.coarse_rto_ticks[slot] = initial_rto_ticks

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT in ticks (``None`` before the first sample)."""
        v = self._st.coarse_srtt[self._i]
        return None if v != v else v  # NaN check

    @property
    def rttvar(self) -> float:
        """Mean deviation, ticks."""
        return self._st.coarse_rttvar[self._i]

    @property
    def rto_ticks(self) -> int:
        return self._st.coarse_rto_ticks[self._i]

    @property
    def samples(self) -> int:
        return self._st.coarse_samples[self._i]

    def update(self, sample_ticks: float) -> None:
        """Fold one RTT sample (in ticks) into the estimate."""
        if sample_ticks < 0:
            raise ValueError("RTT sample must be non-negative")
        st = self._st
        i = self._i
        st.coarse_samples[i] += 1
        srtt = st.coarse_srtt[i]
        if srtt != srtt:  # NaN: first sample
            srtt = sample_ticks
            rttvar = sample_ticks / 2.0
        else:
            err = sample_ticks - srtt
            srtt += err / 8.0
            rttvar = st.coarse_rttvar[i]
            rttvar += (abs(err) - rttvar) / 4.0
        st.coarse_srtt[i] = srtt
        st.coarse_rttvar[i] = rttvar
        raw = srtt + max(1.0, 4.0 * rttvar)
        st.coarse_rto_ticks[i] = int(min(self.max_rto_ticks,
                                         max(self.min_rto_ticks, round(raw))))

    def backed_off_rto(self, shift: int) -> int:
        """RTO in ticks after *shift* exponential backoffs."""
        return min(self.max_rto_ticks, self._st.coarse_rto_ticks[self._i] << shift)


class FineRttEstimator:
    """Jacobson/Karels smoothing over exact (float-second) samples.

    Also tracks *BaseRTT*, the minimum RTT ever observed, which Vegas'
    congestion avoidance mechanism uses as the uncongested reference
    (§3.2: "Vegas sets BaseRTT to the minimum of all measured round
    trip times").
    """

    __slots__ = ("min_rto", "_st", "_i")

    def __init__(self,
                 min_rto: float = C.MIN_FINE_RTO,
                 initial_rto: float = C.INITIAL_FINE_RTO,
                 store: Optional[ConnStateStore] = None,
                 slot: int = 0):
        if store is None:
            store = ConnStateStore()
            slot = store.alloc()
        self._st = store
        self._i = slot
        self.min_rto = min_rto
        store.fine_rto[slot] = initial_rto

    @property
    def srtt(self) -> Optional[float]:
        v = self._st.fine_srtt[self._i]
        return None if v != v else v

    @property
    def rttvar(self) -> float:
        return self._st.fine_rttvar[self._i]

    @property
    def rto(self) -> float:
        return self._st.fine_rto[self._i]

    @property
    def base_rtt(self) -> Optional[float]:
        v = self._st.fine_base[self._i]
        return None if v != v else v

    @property
    def latest(self) -> Optional[float]:
        v = self._st.fine_latest[self._i]
        return None if v != v else v

    @property
    def samples(self) -> int:
        return self._st.fine_samples[self._i]

    def update(self, sample: float, update_base: bool = True) -> None:
        """Fold one RTT sample (seconds) into the estimate and BaseRTT.

        ``update_base=False`` excludes the sample from BaseRTT; the
        connection uses this for handshake (SYN) samples, whose 40-byte
        segments pay far less serialization than data segments and
        would otherwise make every data RTT look congested.
        """
        if sample < 0:
            raise ValueError("RTT sample must be non-negative")
        st = self._st
        i = self._i
        st.fine_samples[i] += 1
        st.fine_latest[i] = sample
        if update_base:
            base = st.fine_base[i]
            if base != base or sample < base:  # NaN or new minimum
                st.fine_base[i] = sample
        srtt = st.fine_srtt[i]
        if srtt != srtt:  # NaN: first sample
            srtt = sample
            rttvar = sample / 2.0
        else:
            err = sample - srtt
            srtt += err / 8.0
            rttvar = st.fine_rttvar[i]
            rttvar += (abs(err) - rttvar) / 4.0
        st.fine_srtt[i] = srtt
        st.fine_rttvar[i] = rttvar
        st.fine_rto[i] = max(self.min_rto, srtt + 4.0 * rttvar)

    def set_base_rtt(self, value: float) -> None:
        """Override BaseRTT (Vegas does this when Actual > Expected)."""
        self._st.fine_base[self._i] = value
