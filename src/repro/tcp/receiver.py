"""Receiver-side segment processing and ACK policy.

Implements the BSD receiver behaviour the paper's senders react to:

* cumulative ACKs;
* **duplicate ACKs sent immediately** whenever an out-of-order segment
  arrives ("Reno sends a duplicate ACK whenever it receives new data
  that it cannot acknowledge", §3.1) — these drive fast retransmit;
* **delayed ACKs** for in-order data: acknowledge every second
  full segment immediately, otherwise wait for the 200 ms fast timer;
* an immediate ACK when a retransmission fills a hole (so the sender
  learns promptly that recovery succeeded);
* an advertised window that shrinks with buffered out-of-order data.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.tcp.buffers import ReassemblyBuffer
from repro.tcp.flatstate import ConnStateStore
from repro.tcp.segment import TCPSegment


class AckAction(enum.Enum):
    """What the connection should do about acknowledging a segment."""

    NONE = "none"          # nothing to acknowledge
    DELAY = "delay"        # set the delayed-ACK flag
    NOW = "now"            # send an ACK immediately


class ReceiverHalf:
    """Inbound data state for one connection endpoint.

    The delayed-ACK flag lives in the connection's flat-state slot
    (column ``delack``) so the host protocol's 200 ms fast-timer scan
    reads it straight out of the packed array; standalone construction
    allocates a private one-slot store.  ``__slots__`` keeps per-flow
    receiver memory flat for many-thousand-conversation runs.
    """

    __slots__ = ("rcvbuf", "delayed_acks", "reasm", "bytes_delivered",
                 "segments_received", "duplicate_segments",
                 "out_of_order_segments", "_st", "_i")

    def __init__(self, rcvbuf: int, delayed_acks: bool = True,
                 store: Optional[ConnStateStore] = None, slot: int = 0):
        if store is None:
            store = ConnStateStore()
            slot = store.alloc()
        self._st = store
        self._i = slot
        self.rcvbuf = rcvbuf
        self.delayed_acks = delayed_acks
        self.reasm = ReassemblyBuffer()
        self.bytes_delivered = 0
        self.segments_received = 0
        self.duplicate_segments = 0
        self.out_of_order_segments = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def delack_pending(self) -> bool:
        """True while an ACK for in-order data is being delayed."""
        return bool(self._st.delack[self._i])

    @delack_pending.setter
    def delack_pending(self, value: bool) -> None:
        self._st.delack[self._i] = 1 if value else 0

    @property
    def rcv_nxt(self) -> int:
        return self.reasm.rcv_nxt

    @property
    def rcv_wnd(self) -> int:
        """Advertised window.

        In-order data is consumed by the application immediately (the
        paper's transfer applications drain as fast as data arrives)
        and, as in 4.3 BSD, the out-of-order reassembly queue is *not*
        charged against the socket buffer — so the advertised window
        stays at the buffer size.  Keeping it constant also matters
        behaviourally: BSD's duplicate-ACK test requires an unchanged
        window, so a window that shrank with every out-of-order
        arrival would suppress fast retransmit entirely.
        """
        return self.rcvbuf

    def init_sequence(self, irs: int) -> None:
        """Set the initial receive sequence (one past the peer's SYN)."""
        self.reasm.rcv_nxt = irs

    # ------------------------------------------------------------------
    # Segment processing
    # ------------------------------------------------------------------
    def process_data(self, seg: TCPSegment) -> "tuple[int, AckAction]":
        """Handle the data portion of *seg*.

        Returns ``(delivered_bytes, ack_action)`` where
        ``delivered_bytes`` is how much new in-order data became
        available to the application.
        """
        length = seg.length
        if length == 0:
            return 0, AckAction.NONE
        self.segments_received += 1

        reasm = self.reasm
        seq = seg.seq
        rcv_nxt = reasm.rcv_nxt
        had_gaps = bool(reasm._intervals)
        if seq + length <= rcv_nxt:
            # Entirely old data: the ACK that covered it must have been
            # lost.  Re-ACK immediately.
            self.duplicate_segments += 1
            return 0, AckAction.NOW
        if seq > rcv_nxt:
            # A hole precedes this segment: buffer it and emit an
            # immediate duplicate ACK.
            self.out_of_order_segments += 1
            reasm.add(seq, length)
            return 0, AckAction.NOW

        delivered = reasm.add(seq, length)
        self.bytes_delivered += delivered
        if had_gaps or reasm._intervals:
            # Filling (or partially filling) a hole: ACK right away so
            # the sender exits recovery promptly.
            return delivered, AckAction.NOW
        if not self.delayed_acks:
            return delivered, AckAction.NOW
        if self.delack_pending:
            # Second unacknowledged full segment: ACK now (BSD's
            # every-other-segment rule).
            return delivered, AckAction.NOW
        self.delack_pending = True
        return delivered, AckAction.DELAY

    def ack_sent(self) -> None:
        """Note that an ACK (pure or piggybacked) has gone out."""
        self.delack_pending = False
