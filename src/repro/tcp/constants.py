"""Protocol constants, following 4.3 BSD Reno conventions.

The coarse timer values matter enormously to the reproduction: the
paper's §3.1 observation — Reno takes ~1100 ms to recover losses that
a fine-grained clock would recover in under 300 ms — comes directly
from the 500 ms slow-timer granularity and the 2-tick minimum RTO.
"""

from __future__ import annotations

#: Maximum segment size in bytes ("segment size of 1 KB" in the paper).
DEFAULT_MSS = 1024

#: TCP + IP header bytes charged per segment on the wire.
HEADER_BYTES = 40

#: BSD slow-timer period (seconds): retransmit bookkeeping granularity.
SLOW_TICK = 0.5

#: BSD fast-timer period (seconds): delayed-ACK flush granularity.
FAST_TICK = 0.2

#: Minimum retransmit timeout in slow-timer ticks (2 ticks = 1 s in BSD).
MIN_RTO_TICKS = 2

#: Maximum retransmit timeout in slow-timer ticks (64 s).
MAX_RTO_TICKS = 128

#: RTO used before any RTT sample exists, in ticks (BSD's 6 s default).
INITIAL_RTO_TICKS = 12

#: Maximum exponential-backoff shift applied to the RTO.
MAX_REXMT_SHIFT = 12

#: Ceiling on the zero-window persist-probe interval, in slow-timer
#: ticks (120 ticks = 60 s, BSD's TCPTV_PERSMAX).  The probe interval
#: doubles from one tick up to this cap.
MAX_PERSIST_TICKS = 120

#: Number of duplicate ACKs that triggers fast retransmit.
DUPACK_THRESHOLD = 3

#: Default socket buffer size (the paper runs TCP with 50 KB buffers).
DEFAULT_SOCKBUF = 50 * 1024

#: Ceiling on the congestion window (bytes); generous, the advertised
#: window is the practical limit in all experiments.
MAX_CWND = 1 << 20

#: Fine-grained RTO floor in seconds for Vegas' per-segment timeout
#: checks.  The paper says "less than 300 ms would have been the
#: correct timeout" for its Internet path; a small floor prevents
#: spurious retransmissions from micro-jitter while keeping Vegas'
#: reaction an order of magnitude faster than Reno's 1 s floor.
MIN_FINE_RTO = 0.05

#: RTO used by the fine estimator before any sample exists (seconds).
INITIAL_FINE_RTO = 3.0
