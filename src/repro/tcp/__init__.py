"""TCP implementation: segments, buffers, endpoints, per-host protocol."""

from repro.tcp.connection import State, TCPConnection
from repro.tcp.protocol import TCPProtocol
from repro.tcp.segment import FLAG_ACK, FLAG_FIN, FLAG_SYN, TCPSegment

__all__ = [
    "State",
    "TCPConnection",
    "TCPProtocol",
    "TCPSegment",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_SYN",
]
