"""Packed struct-of-arrays store for per-connection hot state.

Per-connection sender state (``snd_una``/``snd_nxt``/``cwnd``, RTT and
Vegas CAM accumulators, coarse-timer countdowns, the send-time heap
index) lives here in typed columns — one ``array('q')``/``array('d')``
per field, one slot index per connection — instead of being scattered
across ``TCPConnection``/``CongestionControl``/estimator instance
dictionaries.  Two things fall out of the layout:

* the host protocol's 500 ms/200 ms timer scans walk a handful of
  flat arrays over the open slots instead of bouncing through five
  attribute dictionaries per connection, which is what makes
  thousand-conversation runs affordable (see ``TCPProtocol``);
* the hot columns are exactly the state a compiled (mypyc/Cython)
  dispatch loop would need, without further refactoring.

(Plain-list columns were measured as an alternative SoA
representation: a list subscript is ~2x cheaper than a typed-array
subscript in isolation, but end-to-end the typed arrays win ~5% —
the contiguous C columns keep the protocol scans and per-ACK updates
cache-resident, and they enforce int-ness at every write.)

On the fast path every connection of a simulator shares one store
(``store_for(sim)``), so a protocol scan is sequential over packed
memory.  On the ``REPRO_ENGINE_SLOWPATH`` object path each connection
allocates a *private* store: state is then per-object again and the
protocol uses the per-connection method scan, which is what the
bit-identity differential compares against.

Columns use sentinels instead of ``None``: ``-1`` for absent
ints (``t_rexmt``, ``timing_seq``, ``cam_end``) and NaN for absent
floats (``fine_srtt``, ``fine_base``, ...).  Accessor properties on
the owning objects translate back to ``None`` so the public API is
unchanged.
"""

from __future__ import annotations

from array import array
from typing import List

NAN = float("nan")

#: Typed integer columns (``array('q')``) and their slot defaults.
_INT_COLS = (
    # --- TCPConnection sender half --------------------------------
    ("snd_una", 0),
    ("snd_nxt", 0),
    ("snd_max", 0),
    ("peer_wnd", 0),
    ("dupacks", 0),
    ("t_rexmt", -1),          # ticks until coarse timeout; -1 = unarmed
    ("rexmt_shift", 0),
    ("consec_timeouts", 0),
    ("timing_seq", -1),       # coarse-timed sequence; -1 = none
    ("timing_ticks", 0),
    ("persist_shift", 0),
    ("persist_countdown", 0),
    # --- CongestionControl ----------------------------------------
    ("cwnd", 0),
    ("ssthresh", 0),
    # --- Vegas CAM epoch accumulators -----------------------------
    ("cam_end", -1),          # distinguished segment end; -1 = none
    ("cam_window", 0),
    ("cam_bytes_base", 0),
    ("cam_cwnd0", 0),
    ("cam_max_flight", 0),
    # --- RTT estimators (integer parts) ---------------------------
    ("coarse_rto_ticks", 0),
    ("coarse_samples", 0),
    ("fine_samples", 0),
)

#: Typed float columns (``array('d')``) and their slot defaults.
_FLT_COLS = (
    ("pace_next", 0.0),
    ("cam_sent", 0.0),
    ("fine_srtt", NAN),
    ("fine_rttvar", 0.0),
    ("fine_rto", 0.0),
    ("fine_base", NAN),
    ("fine_latest", NAN),
    ("coarse_srtt", NAN),
    ("coarse_rttvar", 0.0),
)

#: Small flag columns (``array('b')``).
_FLAG_COLS = (
    ("state_code", 0),        # State.<...>.value mirror (CLOSED == 0)
    ("delack", 0),            # ReceiverHalf.delack_pending
)

#: Per-slot container columns (plain Python lists of objects).
_OBJ_COLS = ("send_times", "ends_heap", "ambiguous", "probe_ends",
             "cam_samples")


def _fresh_containers():
    return {}, [], set(), set(), []


class ConnStateStore:
    """Slot-indexed struct-of-arrays backing store.

    ``alloc()`` hands out a slot initialised to the column defaults;
    ``release()`` recycles it.  Columns are public attributes so hot
    code hoists them into locals (``snd_nxt = store.snd_nxt``) and
    indexes by slot.
    """

    __slots__ = tuple(n for n, _ in _INT_COLS) \
        + tuple(n for n, _ in _FLT_COLS) \
        + tuple(n for n, _ in _FLAG_COLS) \
        + _OBJ_COLS + ("free_slots",)

    def __init__(self) -> None:
        for name, _ in _INT_COLS:
            setattr(self, name, array("q"))
        for name, _ in _FLT_COLS:
            setattr(self, name, array("d"))
        for name, _ in _FLAG_COLS:
            setattr(self, name, array("b"))
        for name in _OBJ_COLS:
            setattr(self, name, [])
        self.free_slots: List[int] = []

    def __len__(self) -> int:
        return len(self.snd_una)

    @property
    def live_slots(self) -> int:
        return len(self.snd_una) - len(self.free_slots)

    def alloc(self) -> int:
        """Return a slot index initialised to the column defaults."""
        free = self.free_slots
        if free:
            slot = free.pop()
            self.reset(slot)
            return slot
        for name, default in _INT_COLS:
            getattr(self, name).append(default)
        for name, default in _FLT_COLS:
            getattr(self, name).append(default)
        for name, default in _FLAG_COLS:
            getattr(self, name).append(default)
        for name, container in zip(_OBJ_COLS, _fresh_containers()):
            getattr(self, name).append(container)
        return len(self.snd_una) - 1

    def reset(self, slot: int) -> None:
        """Restore *slot* to the column defaults (fresh containers)."""
        for name, default in _INT_COLS:
            getattr(self, name)[slot] = default
        for name, default in _FLT_COLS:
            getattr(self, name)[slot] = default
        for name, default in _FLAG_COLS:
            getattr(self, name)[slot] = default
        for name, container in zip(_OBJ_COLS, _fresh_containers()):
            getattr(self, name)[slot] = container

    def release(self, slot: int) -> None:
        """Recycle *slot* for a future :meth:`alloc`."""
        self.free_slots.append(slot)


def store_for(sim) -> ConnStateStore:
    """The simulator-wide shared store (created on first use)."""
    store = getattr(sim, "_conn_store", None)
    if store is None:
        store = ConnStateStore()
        sim._conn_store = store
    return store
