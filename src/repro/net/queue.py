"""Drop-tail FIFO queues — the router buffers of the paper.

The paper's routers are "abstract entities supporting a particular
queuing discipline (FIFO)" with a small, fixed number of buffers
(10, 15 or 20 packets in the experiments).  :class:`DropTailQueue`
models exactly that: capacity counted in packets, arrivals beyond
capacity dropped at the tail.

The queue also keeps the statistics the paper's router traces record:
occupancy over time and the time/size of every drop.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.checks import runtime as checks_runtime
from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.obs import runtime as obs_runtime


class DropTailQueue:
    """FIFO packet queue with a finite capacity in packets.

    Args:
        capacity: maximum number of queued packets (the router's buffer
            count).  ``None`` means unbounded, used for host NIC queues
            where the paper's experiments never drop.
        name: label used in traces.
        monitor: optional callback ``(time, event, packet, depth)``
            invoked with ``event`` in ``{"enq", "deq", "drop"}``.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "queue",
                 monitor: Optional[Callable[..., None]] = None):
        if capacity is not None and capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1 (or None)")
        self.capacity = capacity
        self.name = name
        self.monitor = monitor
        self._items: Deque[Packet] = deque()
        # Statistics
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.dropped_bytes = 0
        self.drops: List[Tuple[float, int]] = []  # (time, size) of each drop
        self.max_depth = 0
        self.checker = checks_runtime.active()
        if self.checker is not None:
            self.checker.register_queue(self)
        obs = obs_runtime.active()
        if obs is not None:
            obs.register_queue(self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def offer(self, packet: Packet, now: float) -> bool:
        """Enqueue *packet*; return ``False`` (and drop it) when full."""
        # Hot path: locals instead of the is_full/len properties, one
        # len() call, monitor branch skipped when inactive.
        items = self._items
        depth = len(items)
        if self.capacity is not None and depth >= self.capacity:
            self.dropped += 1
            self.dropped_bytes += packet.size
            self.drops.append((now, packet.size))
            if self.monitor is not None:
                self.monitor(now, "drop", packet, depth)
            return False
        items.append(packet)
        self.enqueued += 1
        depth += 1
        if depth > self.max_depth:
            self.max_depth = depth
        if self.monitor is not None:
            self.monitor(now, "enq", packet, depth)
        return True

    def poll(self, now: float) -> Optional[Packet]:
        """Dequeue and return the head packet, or ``None`` when empty."""
        items = self._items
        if not items:
            return None
        packet = items.popleft()
        self.dequeued += 1
        if self.monitor is not None:
            self.monitor(now, "deq", packet, len(items))
        return packet

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"DropTailQueue({self.name}, {len(self._items)}/{cap})"
