"""Time-varying bandwidth profiles for trace-driven links.

Every link in the paper's experiments drains at a static bandwidth;
this module adds the workload family where that assumption breaks — the
mahimahi-style emulated paths (LTE/WiFi-like cells, stepped capacity,
outages) on which delay-based congestion detection is most stressed.

A :class:`BandwidthTrace` is a piecewise-constant rate profile
``rate(t)`` in bytes/second, optionally cyclic with a fixed period.
The only operations links need are integrals of that profile:

* :meth:`BandwidthTrace.bytes_between` — bytes the link can deliver
  over ``[t0, t1]`` (the delivery *opportunity*, an upper bound on what
  any sender can push through);
* :meth:`BandwidthTrace.time_to_send` — the exact serialisation time
  of ``n`` bytes starting at ``t``, integrating across every upcoming
  rate change (including zero-rate outage segments).

Profiles come from the generator functions (``constant_trace``,
``stepped_trace``, ``random_walk_trace``, ``cellular_trace``,
``outage_trace`` — mirroring the Stanford replication repo's
constant/random-walk logfile generators) or from a file in mahimahi
delivery-opportunity format (:func:`load_mahimahi` /
:func:`save_mahimahi`): one integer millisecond timestamp per line,
each an opportunity to deliver one MTU-sized packet, the whole file
repeating cyclically.

Stochastic generators take an explicit ``random.Random`` so traces are
a deterministic function of (parameters, seed): the same scenario cell
always builds the bit-identical trace, which is what keeps the
harness's content-hash cache and the committed baselines meaningful.

:class:`TraceSpec` is the frozen, hashable description used by arena
scenarios: a generator name plus its parameters, built into a concrete
trace (with the cell's seeded stream) at cohort-construction time.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError

#: mahimahi's delivery-opportunity quantum: one MTU-sized packet.
MTU = 1500

#: One delivery-opportunity bin of the file format, in seconds (1 ms).
BIN_S = 1e-3

#: Epsilon (in packets) absorbing float fuzz when quantising a trace
#: into delivery opportunities; see :func:`save_mahimahi`.
_QUANT_EPS = 1e-6


class BandwidthTrace:
    """A piecewise-constant bandwidth profile, optionally cyclic.

    ``times`` are segment start offsets in seconds (``times[0]`` must
    be 0.0, strictly increasing); segment *i* drains at ``rates[i]``
    bytes/second over ``[times[i], times[i+1])``.  With ``period``
    set, the final segment ends at ``period`` and the whole profile
    repeats forever; without it, the final rate (which must then be
    positive) holds forever.

    Zero-rate segments model outages: nothing drains, but time spent
    inside them is integrated exactly by :meth:`time_to_send`, so a
    packet whose serialisation straddles an outage is delivered at the
    correct later instant.
    """

    __slots__ = ("times", "rates", "period", "name",
                 "_prefix", "_cycle_bytes", "_constant")

    def __init__(self, times: Sequence[float], rates: Sequence[float],
                 period: Optional[float] = None, name: str = "trace"):
        times = tuple(float(t) for t in times)
        rates = tuple(float(r) for r in rates)
        if not times or len(times) != len(rates):
            raise ConfigurationError(
                f"trace {name!r}: times and rates must be equal-length and "
                f"non-empty (got {len(times)} times, {len(rates)} rates)")
        if times[0] != 0.0:
            raise ConfigurationError(
                f"trace {name!r}: first segment must start at t=0.0")
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise ConfigurationError(
                    f"trace {name!r}: segment starts must be strictly "
                    f"increasing ({b} follows {a})")
        for rate in rates:
            if rate < 0 or not math.isfinite(rate):
                raise ConfigurationError(
                    f"trace {name!r}: rates must be finite and "
                    f"non-negative, got {rate!r}")
        if period is not None:
            period = float(period)
            if period <= times[-1]:
                raise ConfigurationError(
                    f"trace {name!r}: period ({period}) must exceed the "
                    f"last segment start ({times[-1]})")
        self.times = times
        self.rates = rates
        self.period = period
        self.name = name
        # Prefix byte integrals at each segment start, for O(log n)
        # rate integration.
        prefix: List[float] = [0.0]
        for i in range(len(times) - 1):
            prefix.append(prefix[-1] + rates[i] * (times[i + 1] - times[i]))
        self._prefix = tuple(prefix)
        if period is not None:
            self._cycle_bytes = prefix[-1] + rates[-1] * (period - times[-1])
            if self._cycle_bytes <= 0:
                raise ConfigurationError(
                    f"trace {name!r}: a cycle must deliver at least one "
                    "byte (all-zero rate profiles never drain a queue)")
        else:
            self._cycle_bytes = None
            if rates[-1] <= 0:
                raise ConfigurationError(
                    f"trace {name!r}: a non-cyclic trace must end on a "
                    "positive rate (a zero tail would never finish a send)")
        # A flat profile — however it was segmented — serialises in
        # closed form, exactly matching the static Channel's
        # ``size / bandwidth``.  That equality is what the constant-
        # trace differential gate relies on.
        self._constant = all(r == rates[0] for r in rates) and rates[0] > 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when the profile is one flat positive rate."""
        return self._constant

    @property
    def mean_rate(self) -> float:
        """Cycle-mean rate (bytes/second); the link's nominal bandwidth."""
        if self._constant:
            return self.rates[0]
        if self.period is not None:
            return self._cycle_bytes / self.period
        span = self.times[-1]
        if span <= 0:
            return self.rates[-1]
        return self._prefix[-1] / span

    @property
    def max_rate(self) -> float:
        return max(self.rates)

    @property
    def min_rate(self) -> float:
        return min(self.rates)

    def rate_at(self, t: float) -> float:
        """Instantaneous rate at absolute time *t* (bytes/second)."""
        if t < 0:
            raise ValueError(f"trace time must be non-negative, got {t}")
        if self._constant:
            return self.rates[0]
        if self.period is not None:
            t = t % self.period
        return self.rates[bisect_right(self.times, t) - 1]

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def _cum(self, t: float) -> float:
        """Integral of the rate over ``[0, t]`` (bytes)."""
        if t <= 0:
            return 0.0
        if self._constant:
            return self.rates[0] * t
        total = 0.0
        if self.period is not None:
            cycles, t = divmod(t, self.period)
            total = cycles * self._cycle_bytes
        i = bisect_right(self.times, t) - 1
        return total + self._prefix[i] + self.rates[i] * (t - self.times[i])

    def bytes_between(self, t0: float, t1: float) -> float:
        """Delivery opportunity over ``[t0, t1]``: the integral of the
        rate.  No sender can move more than this across the link in
        that interval; a saturated sender moves exactly this."""
        if t1 < t0:
            raise ValueError(f"bytes_between needs t0 <= t1, "
                             f"got [{t0}, {t1}]")
        return self._cum(t1) - self._cum(t0)

    def time_to_send(self, nbytes: float, start: float = 0.0) -> float:
        """Seconds to serialise *nbytes* starting at *start*.

        The exact inverse of :meth:`bytes_between`: integrates the rate
        forward from *start*, crossing every rate change (and waiting
        out zero-rate outage segments) until *nbytes* have drained.
        For a constant trace this is exactly ``nbytes / rate`` — the
        same float division the static :class:`~repro.net.link.Channel`
        computes, which keeps the two bit-identical.
        """
        if nbytes <= 0:
            return 0.0
        if self._constant:
            return nbytes / self.rates[0]
        remaining = float(nbytes)
        elapsed = 0.0
        if self.period is not None and remaining > self._cycle_bytes:
            # Skip whole cycles in closed form: every full period
            # delivers exactly _cycle_bytes regardless of phase.
            cycles = math.ceil(remaining / self._cycle_bytes) - 1
            elapsed = cycles * self.period
            remaining -= cycles * self._cycle_bytes
        t = start + elapsed
        # Walk segments *by index*, with boundaries taken from the
        # canonical times[] table: only the first (possibly partial)
        # segment uses the float phase of *t*.  Advancing t by a
        # residual span can stall when the span is below t's ulp
        # (t += 4e-16 is a no-op at t ~ 10), but an index increment
        # always makes progress.  Bounded by ~two cycles: whole cycles
        # were skipped above.
        nseg = len(self.times)
        if self.period is not None:
            cycles_done, phase = divmod(t, self.period)
            base = cycles_done * self.period
        else:
            phase, base = t, 0.0
        i = bisect_right(self.times, phase) - 1
        for _ in range(3 * nseg + 8):
            if i + 1 < nseg:
                seg_end = self.times[i + 1]
            elif self.period is not None:
                seg_end = self.period
            else:
                seg_end = math.inf  # validated-positive infinite tail
            rate = self.rates[i]
            if rate > 0:
                capacity = rate * (seg_end - phase)
                if remaining <= capacity:
                    return base + phase + remaining / rate - start
                remaining -= capacity
            i += 1
            if i == nseg:
                i = 0
                base += self.period
                phase = 0.0
            else:
                phase = self.times[i]
        raise SimulationError(
            f"trace {self.name!r}: rate integration failed to converge "
            f"({remaining:.1f} bytes left after walking {3 * nseg + 8} "
            "segments)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cyc = f", period={self.period:g}s" if self.period is not None else ""
        return (f"BandwidthTrace({self.name}, {len(self.rates)} segment(s)"
                f"{cyc}, mean {self.mean_rate:.0f} B/s)")


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def constant_trace(rate: float, name: str = "constant") -> BandwidthTrace:
    """A flat profile: *rate* bytes/second forever."""
    if rate <= 0:
        raise ConfigurationError(
            f"constant trace rate must be positive, got {rate!r}")
    return BandwidthTrace((0.0,), (rate,), name=name)


def stepped_trace(steps: Iterable[Tuple[float, float]], cyclic: bool = True,
                  name: str = "steps") -> BandwidthTrace:
    """A square-wave profile from ``(duration, rate)`` pairs.

    With ``cyclic`` (the default) the step sequence repeats forever;
    otherwise the last step's rate holds after the sequence ends.
    """
    steps = [(float(d), float(r)) for d, r in steps]
    if not steps:
        raise ConfigurationError("stepped trace needs at least one step")
    for duration, _ in steps:
        if duration <= 0:
            raise ConfigurationError(
                f"step durations must be positive, got {duration!r}")
    times, rates = [], []
    t = 0.0
    for duration, rate in steps:
        times.append(t)
        rates.append(rate)
        t += duration
    return BandwidthTrace(times, rates, period=t if cyclic else None,
                          name=name)


def random_walk_trace(mean: float, step: float, rng: random.Random,
                      interval: float = 0.1, duration: float = 30.0,
                      floor: float = 0.0, ceiling: Optional[float] = None,
                      name: str = "random-walk") -> BandwidthTrace:
    """A seeded random-walk profile around *mean* (bytes/second).

    Every *interval* seconds the rate moves by a uniform draw in
    ``[-step, +step]``, clamped to ``[floor, ceiling]`` (ceiling
    defaults to ``2 * mean``), for *duration* seconds; the walk then
    repeats cyclically.  This mirrors the Stanford replication repo's
    ``gen_random_walk_logfile`` bandwidth process.
    """
    if mean <= 0 or step <= 0 or interval <= 0 or duration <= 0:
        raise ConfigurationError(
            "random-walk trace needs positive mean, step, interval and "
            f"duration (got mean={mean!r}, step={step!r}, "
            f"interval={interval!r}, duration={duration!r})")
    if ceiling is None:
        ceiling = 2.0 * mean
    if not 0 <= floor < ceiling:
        raise ConfigurationError(
            f"random-walk bounds need 0 <= floor < ceiling, got "
            f"[{floor!r}, {ceiling!r}]")
    nseg = max(1, int(round(duration / interval)))
    rate = min(max(mean, floor), ceiling)
    times, rates = [], []
    for i in range(nseg):
        times.append(i * interval)
        rates.append(rate)
        rate = min(ceiling, max(floor, rate + rng.uniform(-step, step)))
    return BandwidthTrace(times, rates, period=nseg * interval, name=name)


def cellular_trace(peak: float, trough: float, rng: random.Random,
                   ramp: float = 4.0, interval: float = 0.2,
                   fade_prob: float = 0.05, fade_depth: float = 0.1,
                   cycles: int = 4, name: str = "cellular") -> BandwidthTrace:
    """A cellular-like saw/burst profile (LTE scheduler caricature).

    Capacity ramps linearly from *peak* down to *trough* over *ramp*
    seconds and snaps back — the sawtooth a moving user sees as radio
    conditions decay and the cell re-schedules — discretised every
    *interval* seconds.  Each sample independently suffers a deep fade
    with probability *fade_prob*, multiplying the rate by *fade_depth*
    (a burst of near-outage, the "cliff" cellular traces show).  The
    profile covers *cycles* saw periods and repeats.
    """
    if peak <= 0 or not 0 < trough <= peak:
        raise ConfigurationError(
            f"cellular trace needs 0 < trough <= peak, got "
            f"trough={trough!r}, peak={peak!r}")
    if ramp <= 0 or interval <= 0 or ramp < interval:
        raise ConfigurationError(
            f"cellular trace needs 0 < interval <= ramp, got "
            f"interval={interval!r}, ramp={ramp!r}")
    if not 0 <= fade_prob < 1 or not 0 < fade_depth <= 1:
        raise ConfigurationError(
            f"cellular trace needs 0 <= fade_prob < 1 and "
            f"0 < fade_depth <= 1, got fade_prob={fade_prob!r}, "
            f"fade_depth={fade_depth!r}")
    if cycles < 1:
        raise ConfigurationError(f"cycles must be >= 1, got {cycles!r}")
    per_saw = max(1, int(round(ramp / interval)))
    times, rates = [], []
    for seg in range(cycles * per_saw):
        frac = (seg % per_saw) / per_saw
        rate = peak - (peak - trough) * frac
        if rng.random() < fade_prob:
            rate *= fade_depth
        times.append(seg * interval)
        rates.append(rate)
    return BandwidthTrace(times, rates,
                          period=cycles * per_saw * interval, name=name)


def outage_trace(rate: float, period: float, down: float,
                 name: str = "outage") -> BandwidthTrace:
    """An on/off profile: *rate* bytes/second, with the link dark for
    the last *down* seconds of every *period*-second cycle."""
    if rate <= 0:
        raise ConfigurationError(
            f"outage trace rate must be positive, got {rate!r}")
    if not 0 < down < period:
        raise ConfigurationError(
            f"outage trace needs 0 < down < period, got "
            f"down={down!r}, period={period!r}")
    return stepped_trace(((period - down, rate), (down, 0.0)),
                         cyclic=True, name=name)


# ----------------------------------------------------------------------
# mahimahi delivery-opportunity file format
# ----------------------------------------------------------------------

def save_mahimahi(trace: BandwidthTrace, path: str, mtu: int = MTU,
                  duration: Optional[float] = None) -> int:
    """Write *trace* as a mahimahi delivery-opportunity file.

    One line per opportunity: the integer millisecond (bin start) at
    which one *mtu*-sized packet may be delivered.  The quantiser runs
    a byte accumulator over 1 ms bins, so rates that are not a whole
    number of packets per bin carry their remainder forward instead of
    being truncated — total opportunities match the trace's byte
    integral to within one packet.  ``duration`` defaults to one full
    cycle (or 1 s for non-cyclic traces).  Returns the number of
    opportunities written.
    """
    if mtu <= 0:
        raise ConfigurationError(f"mtu must be positive, got {mtu!r}")
    if duration is None:
        duration = trace.period if trace.period is not None \
            else max(trace.times[-1], 1.0)
    nbins = int(round(duration / BIN_S))
    if nbins < 1:
        raise ConfigurationError(
            f"trace duration {duration!r} is shorter than one 1 ms bin")
    written = 0
    acc = 0.0
    with open(path, "w") as handle:
        for b in range(nbins):
            acc += trace.bytes_between(b * BIN_S, (b + 1) * BIN_S)
            n = int(acc / mtu + _QUANT_EPS)
            if n:
                handle.write(f"{b}\n" * n)
                written += n
                acc -= n * mtu
    return written


def load_mahimahi(path: str, mtu: int = MTU,
                  name: Optional[str] = None) -> BandwidthTrace:
    """Load a mahimahi delivery-opportunity file as a cyclic trace.

    Each line is an integer millisecond timestamp granting one
    *mtu*-sized delivery; ``k`` lines with timestamp ``t`` become a
    1 ms segment at ``k * mtu * 1000`` bytes/second, empty
    milliseconds become zero-rate segments, and the trace repeats with
    period ``max(timestamp) + 1`` ms (the file's loop point).  Loading
    and re-saving a file reproduces it byte for byte, which the
    property suite checks as the format round-trip.
    """
    if mtu <= 0:
        raise ConfigurationError(f"mtu must be positive, got {mtu!r}")
    counts = {}
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            text = line.strip()
            if not text:
                continue
            try:
                ts = int(text)
            except ValueError:
                raise ConfigurationError(
                    f"{path}:{lineno}: expected an integer millisecond "
                    f"timestamp, got {text!r}") from None
            if ts < 0:
                raise ConfigurationError(
                    f"{path}:{lineno}: timestamps must be non-negative, "
                    f"got {ts}")
            counts[ts] = counts.get(ts, 0) + 1
    if not counts:
        raise ConfigurationError(
            f"{path}: no delivery opportunities (empty trace)")
    period_ms = max(counts) + 1
    # Merge consecutive equal-rate milliseconds into one segment.
    times: List[float] = []
    rates: List[float] = []
    for b in range(period_ms):
        rate = counts.get(b, 0) * mtu * 1000.0
        if not rates or rate != rates[-1]:
            times.append(b * BIN_S)
            rates.append(rate)
    return BandwidthTrace(times, rates, period=period_ms * BIN_S,
                          name=name or path)


# ----------------------------------------------------------------------
# TraceSpec: the hashable scenario-side description
# ----------------------------------------------------------------------

#: Generator names accepted by :meth:`TraceSpec.build`.
TRACE_KINDS = ("constant", "steps", "random-walk", "cellular", "outage",
               "file")

#: Kinds whose build consumes seeded randomness.
STOCHASTIC_KINDS = ("random-walk", "cellular")


@dataclass(frozen=True)
class TraceSpec:
    """A frozen, hashable recipe for a :class:`BandwidthTrace`.

    Arena scenarios carry one of these instead of a built trace so the
    scenario table stays a table of plain values; the cohort builder
    calls :meth:`build` with the cell's seeded stream, making the
    resulting trace a pure function of (spec, seed).
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, kind: str, **params: object) -> "TraceSpec":
        if kind not in TRACE_KINDS:
            raise ConfigurationError(
                f"unknown trace kind {kind!r}; known: {list(TRACE_KINDS)}")
        return cls(kind, tuple(sorted(params.items())))

    def build(self, rng: Optional[random.Random] = None) -> BandwidthTrace:
        """Instantiate the trace; stochastic kinds require *rng*."""
        params = dict(self.params)
        if self.kind in STOCHASTIC_KINDS:
            if rng is None:
                raise ConfigurationError(
                    f"trace kind {self.kind!r} is stochastic and needs a "
                    "seeded random.Random")
            params["rng"] = rng
        if self.kind == "constant":
            return constant_trace(**params)
        if self.kind == "steps":
            return stepped_trace(**params)
        if self.kind == "random-walk":
            return random_walk_trace(**params)
        if self.kind == "cellular":
            return cellular_trace(**params)
        if self.kind == "outage":
            return outage_trace(**params)
        if self.kind == "file":
            return load_mahimahi(**params)
        raise ConfigurationError(
            f"unknown trace kind {self.kind!r}; known: {list(TRACE_KINDS)}")

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({inner})"
