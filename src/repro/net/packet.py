"""Network packets.

A :class:`Packet` is the unit handled by links and routers: a source
and destination host address plus an opaque transport payload (in
practice a :class:`repro.tcp.segment.TCPSegment`).  Data is *virtual* —
packets carry byte counts, never actual bytes — but the wire size
(headers plus payload length) is what links charge for transmission
and what router buffers account.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

_uid_counter = itertools.count(1)


class Packet:
    """An IP-level packet carrying a transport segment.

    Attributes:
        src: source host address.
        dst: destination host address.
        payload: the transport segment (opaque to the network layer).
        size: bytes on the wire, headers included.
        uid: unique id for tracing; never reused within a process.
        created_at: simulated time the packet was created, for
            queueing-delay measurements.
        ecn_capable: the sender understands congestion marks (ECT).
        ecn_marked: a router marked this packet instead of dropping it
            (CE); only meaningful when ``ecn_capable``.
    """

    __slots__ = ("src", "dst", "payload", "size", "uid", "created_at",
                 "ecn_capable", "ecn_marked")

    def __init__(self, src: str, dst: str, payload: Any, size: int,
                 created_at: float = 0.0, uid: Optional[int] = None,
                 ecn_capable: bool = False):
        if size <= 0:
            raise ValueError("packet size must be positive")
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size if type(size) is int else int(size)
        self.uid = uid if uid is not None else next(_uid_counter)
        self.created_at = created_at
        self.ecn_capable = ecn_capable
        self.ecn_marked = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Packet(#{self.uid} {self.src}->{self.dst} "
                f"{self.size}B {self.payload!r})")
