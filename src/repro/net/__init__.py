"""Network substrate: packets, queues, links, LANs, nodes, topologies."""

from repro.net.addresses import FlowId
from repro.net.link import Channel, EthernetLan, PointToPointLink
from repro.net.node import Host, Node, Router
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.net.topology import Topology

__all__ = [
    "FlowId",
    "Channel",
    "EthernetLan",
    "PointToPointLink",
    "Host",
    "Node",
    "Router",
    "Packet",
    "DropTailQueue",
    "Topology",
]
