"""Network substrate: packets, queues, links, LANs, nodes, topologies,
and time-varying bandwidth traces."""

from repro.net.addresses import FlowId
from repro.net.link import (
    Channel,
    EthernetLan,
    PointToPointLink,
    VariableRateChannel,
)
from repro.net.node import Host, Node, Router
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.net.topology import Topology
from repro.net.traces import BandwidthTrace, TraceSpec

__all__ = [
    "FlowId",
    "Channel",
    "EthernetLan",
    "PointToPointLink",
    "VariableRateChannel",
    "Host",
    "Node",
    "Router",
    "Packet",
    "DropTailQueue",
    "Topology",
    "BandwidthTrace",
    "TraceSpec",
]
