"""Random Early Detection queueing discipline.

The paper's simulator supported "a particular queuing discipline
(e.g., FIFO)"; RED (Floyd & Jacobson, 1993 — contemporaneous with
Vegas) is the canonical alternative, and an interesting comparison
point: RED keeps router queues short by *router-side* early drops,
while Vegas keeps them short by *end-host* restraint.  The
``bench_extension_red`` benchmark runs Reno-over-RED against Vegas
over drop-tail.

The implementation follows the 1993 paper: an EWMA of the queue
length, a linearly rising drop probability between ``min_th`` and
``max_th``, the inter-drop count correction, and the idle-time
adjustment that ages the average while the queue is empty.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue


class REDQueue(DropTailQueue):
    """RED: probabilistic early drops driven by the average queue."""

    def __init__(self, capacity: int, rng: random.Random,
                 min_th: float = 3.0, max_th: float = 9.0,
                 max_p: float = 0.1, weight: float = 0.2,
                 mean_packet_time: float = 0.005,
                 ecn: bool = False,
                 name: str = "red-queue",
                 monitor: Optional[Callable[..., None]] = None):
        super().__init__(capacity, name=name, monitor=monitor)
        #: With ECN enabled, an early "drop" of an ECN-capable packet
        #: becomes a congestion mark instead (RFC 3168 semantics).
        self.ecn = ecn
        self.marks = 0
        if not 0 < min_th < max_th:
            raise ConfigurationError("need 0 < min_th < max_th")
        if not 0 < max_p <= 1:
            raise ConfigurationError("max_p must be in (0, 1]")
        if not 0 < weight <= 1:
            raise ConfigurationError("weight must be in (0, 1]")
        self.rng = rng
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self.mean_packet_time = mean_packet_time
        self.avg = 0.0
        self._count_since_drop = -1
        self._idle_since: Optional[float] = 0.0
        self.early_drops = 0
        self.forced_drops = 0

    # ------------------------------------------------------------------
    def _update_avg(self, now: float) -> None:
        if not self._items and self._idle_since is not None:
            # Idle adjustment: age the average as if empty packets had
            # been arriving while the queue was idle.
            idle_packets = (now - self._idle_since) / self.mean_packet_time
            self.avg *= (1.0 - self.weight) ** max(0.0, idle_packets)
            self._idle_since = None
        self.avg = (1.0 - self.weight) * self.avg + self.weight * len(self._items)

    def _early_drop(self) -> bool:
        if self.avg < self.min_th:
            self._count_since_drop = -1
            return False
        if self.avg >= self.max_th:
            self._count_since_drop = 0
            return True
        self._count_since_drop += 1
        base_p = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        denominator = 1.0 - self._count_since_drop * base_p
        p = base_p / denominator if denominator > 0 else 1.0
        if self.rng.random() < p:
            self._count_since_drop = 0
            return True
        return False

    # ------------------------------------------------------------------
    def offer(self, packet: Packet, now: float) -> bool:
        self._update_avg(now)
        if self._early_drop():
            if self.ecn and packet.ecn_capable and not self.is_full:
                # Mark instead of dropping: the sender gets the same
                # congestion signal without losing the data.
                packet.ecn_marked = True
                self.marks += 1
                return super().offer(packet, now)
            self.early_drops += 1
            self._drop(packet, now)
            return False
        if self.is_full:
            self.forced_drops += 1
            self._drop(packet, now)
            return False
        return super().offer(packet, now)

    def poll(self, now: float):
        packet = super().poll(now)
        if not self._items:
            self._idle_since = now
        return packet

    def _drop(self, packet: Packet, now: float) -> None:
        self.dropped += 1
        self.dropped_bytes += packet.size
        self.drops.append((now, packet.size))
        if self.monitor is not None:
            self.monitor(now, "drop", packet, len(self._items))
