"""Host addressing and flow identification.

Hosts are addressed by name (strings like ``"Host1a"``) — the paper's
simulated network is small and static, so symbolic addresses keep
traces readable.  A flow is the usual TCP 4-tuple.
"""

from __future__ import annotations

from typing import NamedTuple


class FlowId(NamedTuple):
    """A TCP connection's 4-tuple, as seen from one endpoint."""

    local_addr: str
    local_port: int
    remote_addr: str
    remote_port: int

    def reversed(self) -> "FlowId":
        """The same flow as seen from the other endpoint."""
        return FlowId(self.remote_addr, self.remote_port,
                      self.local_addr, self.local_port)

    def __str__(self) -> str:
        return (f"{self.local_addr}:{self.local_port}->"
                f"{self.remote_addr}:{self.remote_port}")
