"""Network nodes: hosts and routers.

A :class:`Host` terminates transport connections — its received
packets are handed to the attached transport protocol (TCP).  A
:class:`Router` forwards packets by destination address using a static
forwarding table computed when the topology is built.  Routers are the
paper's "abstract entity that supports a particular queuing
discipline": the FIFO buffering happens in the egress queues of the
router's outgoing links.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.net.link import Port
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class Node:
    """Base class for anything attached to links."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []
        # destination host name -> (port, next hop node, bound
        # port.transmit).  The bound method is stored alongside so the
        # per-packet forwarding path skips one attribute lookup.
        self.forwarding: Dict[str, Tuple[Port, "Node", Callable]] = {}

    def add_port(self, port: Port) -> None:
        self.ports.append(port)

    def neighbors(self) -> List["Node"]:
        """All directly connected nodes, over every port."""
        result: List["Node"] = []
        for port in self.ports:
            result.extend(port.neighbors())
        return result

    def install_route(self, dst: str, port: Port, next_node: "Node") -> None:
        self.forwarding[dst] = (port, next_node, port.transmit)

    def forward(self, packet: Packet) -> bool:
        """Send *packet* toward its destination via the forwarding table."""
        entry = self.forwarding.get(packet.dst)
        if entry is None:
            raise RoutingError(f"{self.name}: no route to {packet.dst}")
        return entry[2](packet, entry[1])

    def receive(self, packet: Packet) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """An end host running a transport protocol stack.

    The transport protocol registers itself by assigning
    :attr:`protocol_handler`; every packet addressed to this host is
    delivered there.  Packets for other hosts arriving at a host are
    counted and discarded (hosts do not forward).
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.protocol_handler: Optional[Callable[[Packet], None]] = None
        self.packets_received = 0
        self.bytes_received = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self.misdelivered = 0

    def send_packet(self, packet: Packet) -> bool:
        """Inject a locally generated packet into the network."""
        self.packets_sent += 1
        self.bytes_sent += packet.size
        if packet.dst == self.name:
            # Loopback: deliver immediately without touching the wire.
            self.sim.schedule_anon(0.0, self.receive, packet)
            return True
        return self.forward(packet)

    def receive(self, packet: Packet) -> None:
        if packet.dst != self.name:
            self.misdelivered += 1
            return
        self.packets_received += 1
        self.bytes_received += packet.size
        if self.protocol_handler is not None:
            self.protocol_handler(packet)


class Router(Node):
    """A store-and-forward router with static routes.

    Forwarding itself is instantaneous (the paper's abstract router);
    all delay and loss come from the egress link queues.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.packets_forwarded = 0
        self.bytes_forwarded = 0
        self.no_route_drops = 0

    def receive(self, packet: Packet) -> None:
        entry = self.forwarding.get(packet.dst)
        if entry is None:
            self.no_route_drops += 1
            return
        self.packets_forwarded += 1
        self.bytes_forwarded += packet.size
        entry[2](packet, entry[1])
