"""Topology construction and static route computation.

A :class:`Topology` collects hosts, routers, links and LANs, then
computes shortest-path (hop-count) routes with a breadth-first search
and installs a static forwarding table in every node.  The networks in
the paper are tiny (Figure 5 has six hosts and two routers; the
Internet emulation is a 17-hop chain), so hop-count BFS routing is
exactly what their static configuration used.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, RoutingError
from repro.net.link import EthernetLan, PointToPointLink
from repro.net.node import Host, Node, Router
from repro.sim.engine import Simulator
from repro.units import mbps, ms


class Topology:
    """A network under construction.

    Typical use::

        topo = Topology(sim)
        a = topo.add_host("A")
        r = topo.add_router("R")
        b = topo.add_host("B")
        topo.add_link(a, r, bandwidth=mbps(10), delay=ms(0.1))
        topo.add_link(r, b, bandwidth=200 * 1024, delay=ms(50),
                      queue_capacity=10)
        topo.build_routes()
    """

    #: Default access-LAN parameters (10 Mb/s Ethernet, 0.1 ms latency).
    LAN_BANDWIDTH = mbps(10)
    LAN_LATENCY = ms(0.1)

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: List[PointToPointLink] = []
        self.lans: List[EthernetLan] = []
        self._routes_built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_host(self, name: str) -> Host:
        self._check_new(name)
        host = Host(self.sim, name)
        self.nodes[name] = host
        return host

    def add_router(self, name: str) -> Router:
        self._check_new(name)
        router = Router(self.sim, name)
        self.nodes[name] = router
        return router

    def add_link(self, a: Node, b: Node, bandwidth: float, delay: float,
                 queue_capacity: Optional[int] = None,
                 name: str = "", queue_factory=None, trace=None,
                 loss: float = 0.0, loss_rng=None) -> PointToPointLink:
        """Connect *a* and *b* with a point-to-point link.

        ``queue_capacity`` is the per-direction egress buffer in
        packets — this is where the paper's "router buffers" live.
        ``queue_factory(name)`` overrides the drop-tail default with
        another queueing discipline (e.g. :class:`repro.net.red.REDQueue`).
        ``trace`` (a :class:`repro.net.traces.BandwidthTrace`) makes the
        link drain along a time-varying profile instead of the static
        ``bandwidth``; ``loss`` adds seeded stochastic loss drawn from
        ``loss_rng`` (see :class:`repro.net.link.VariableRateChannel`).
        """
        link = PointToPointLink(self.sim, a, b, bandwidth, delay,
                                queue_capacity, name=name,
                                queue_factory=queue_factory, trace=trace,
                                loss=loss, loss_rng=loss_rng)
        self.links.append(link)
        self._routes_built = False
        return link

    def add_lan(self, nodes: List[Node], bandwidth: Optional[float] = None,
                latency: Optional[float] = None, name: str = "") -> EthernetLan:
        """Attach *nodes* to a new shared Ethernet LAN."""
        if len(nodes) < 2:
            raise ConfigurationError("a LAN needs at least two nodes")
        lan = EthernetLan(
            self.sim,
            bandwidth if bandwidth is not None else self.LAN_BANDWIDTH,
            latency if latency is not None else self.LAN_LATENCY,
            name=name or f"lan{len(self.lans)}",
        )
        for node in nodes:
            lan.attach(node)
        self.lans.append(lan)
        self._routes_built = False
        return lan

    def _check_new(self, name: str) -> None:
        if name in self.nodes:
            raise ConfigurationError(f"duplicate node name {name!r}")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """Compute hop-count shortest paths and install forwarding tables.

        For every destination host we BFS backwards from the
        destination; each node's next hop toward the destination is the
        neighbor through which it was first reached.
        """
        hosts = [n for n in self.nodes.values() if isinstance(n, Host)]
        for dst in hosts:
            self._install_routes_to(dst)
        self._routes_built = True

    def _install_routes_to(self, dst: Host) -> None:
        # BFS from dst; parent[n] is the neighbor of n on the shortest
        # path toward dst.
        parent: Dict[Node, Node] = {dst: dst}
        frontier = deque([dst])
        while frontier:
            node = frontier.popleft()
            for neighbor in node.neighbors():
                if neighbor not in parent:
                    parent[neighbor] = node
                    frontier.append(neighbor)
        for node in self.nodes.values():
            if node is dst:
                continue
            next_hop = parent.get(node)
            if next_hop is None:
                continue  # disconnected from dst; forwarding will raise
            port = self._port_toward(node, next_hop)
            node.install_route(dst.name, port, next_hop)

    @staticmethod
    def _port_toward(node: Node, neighbor: Node):
        for port in node.ports:
            if neighbor in port.neighbors():
                return port
        raise RoutingError(
            f"{node.name} has no port toward {neighbor.name}")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        node = self.nodes.get(name)
        if not isinstance(node, Host):
            raise ConfigurationError(f"{name!r} is not a host in this topology")
        return node

    def router(self, name: str) -> Router:
        node = self.nodes.get(name)
        if not isinstance(node, Router):
            raise ConfigurationError(f"{name!r} is not a router in this topology")
        return node
