"""Link-level abstractions: point-to-point links and Ethernet LANs.

These mirror the paper's simulator, which supported "point-to-point
connections and ethernets".

A point-to-point link is two independent unidirectional channels, each
with a bandwidth, a propagation delay and an egress drop-tail queue
(the router buffers live here — a router drops a packet when the
egress queue of its outgoing link is full, exactly the behaviour of
the paper's FIFO routers).

An Ethernet LAN is modelled abstractly: a shared medium serialising
transmissions first-come-first-served at the LAN bandwidth with a
small fixed latency.  The paper's access LANs are never the
bottleneck, so no collision modelling is needed — only the store-and-
forward serialisation delay matters.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.checks import runtime as checks_runtime
from repro.errors import ConfigurationError
from repro.faults import runtime as faults_runtime
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.net.traces import BandwidthTrace, constant_trace
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node


def validate_link_params(bandwidth: float, delay: float,
                         who: str = "link") -> None:
    """Shared construction guard for every link-layer component.

    One wording for channels, point-to-point links and LANs, so a bad
    topology fails the same way whichever layer catches it first.
    """
    if bandwidth <= 0:
        raise ConfigurationError(
            f"{who}: bandwidth must be positive, got {bandwidth!r}")
    if delay < 0:
        raise ConfigurationError(
            f"{who}: delay must be non-negative, got {delay!r}")


class Channel:
    """One direction of a point-to-point link.

    Packets enter through an egress :class:`DropTailQueue`; the channel
    drains the queue at ``bandwidth`` bytes/second and delivers each
    packet to ``dst`` after an additional propagation ``delay``.
    """

    def __init__(self, sim: Simulator, bandwidth: float, delay: float,
                 queue: DropTailQueue, name: str = "channel"):
        validate_link_params(bandwidth, delay, who=f"channel {name!r}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.delay = delay
        self.queue = queue
        self.name = name
        self.dst: Optional["Node"] = None
        self._busy = False
        self.bytes_delivered = 0
        self.packets_delivered = 0
        #: Packets dequeued but not yet delivered (serialising,
        #: propagating, or parked by an injected fault).
        self.in_transit = 0
        # Fault injection and invariant checking attach here when the
        # corresponding runtime is active at construction time.
        session = faults_runtime.active()
        self.faults = session.attach(self) if session is not None else None
        checker = checks_runtime.active()
        if checker is not None:
            checker.register_channel(self)
        # Hot-path bindings: the simulator and fault state are fixed
        # for the channel's lifetime.  When no fault session is
        # attached the propagation event jumps straight to
        # deliver_now, skipping the faults branch entirely.  The
        # queue's offer/poll are looked up per call on purpose — they
        # are a seam tests patch to inject targeted drops.
        self._schedule = sim.schedule_anon
        self._deliver_fn = self.deliver_now if self.faults is None else self._deliver
        # Prebound completion handle: one bound-method object reused by
        # every transmission instead of a fresh one per schedule call.
        self._tx_done_b = self._tx_done
        # The empty-queue fast exit in _tx_done skips the final poll()
        # round-trip — safe only for the stock poll, which has no
        # empty-queue side effects.  Subclasses may (REDQueue stamps
        # its idle-aging clock on an empty poll), so they keep the
        # exact historical poll sequence.
        self._plain_poll = type(queue).poll is DropTailQueue.poll

    def send(self, packet: Packet, _next_node: "Node" = None) -> bool:
        """Offer *packet* to the egress queue; start draining if idle.

        Returns ``False`` when the queue dropped the packet.  The
        unused second parameter lets a forwarding entry bind this
        method as its ``transmit`` directly (ports pass the next hop).
        """
        accepted = self.queue.offer(packet, self.sim.now)
        if accepted and not self._busy:
            self._transmit_next()
        return accepted

    def _transmit_next(self) -> None:
        sim = self.sim
        packet = self.queue.poll(sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self.in_transit += 1
        # The two hottest schedule sites in the simulator inline the
        # anonymous-event push (same (time, seq) bookkeeping as
        # Simulator.schedule_anon, so ordering is bit-identical); the
        # slow path keeps the engine call so its heap stays Event-typed.
        # With no parked buckets (_far_count == 0) a heap push is
        # always order-safe (_far_bound is inf), so the engine's
        # wheel-activation threshold is deliberately not re-checked
        # here: parking only ever *starts* at the engine's own push
        # sites, and these near-future link events would not park.
        if sim._fast and not sim._far_count:
            seq = sim._seq
            sim._seq = seq + 1
            sim._live += 1
            time = sim.now + packet.size / self.bandwidth
            if time > sim._heap_max:
                sim._heap_max = time
            _heappush(sim._heap, (time, seq, self._tx_done_b, (packet,)))
        elif sim._fast:
            # Calendar wheel active: route through the engine so the
            # parking decision stays in one place.
            sim.schedule_anon(packet.size / self.bandwidth,
                              self._tx_done_b, packet)
        else:
            self._schedule(packet.size / self.bandwidth, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        # The wire is free as soon as the last bit leaves; the packet
        # arrives one propagation delay later.
        sim = self.sim
        if sim._fast and not sim._far_count:
            seq = sim._seq
            sim._seq = seq + 1
            sim._live += 1
            time = sim.now + self.delay
            if time > sim._heap_max:
                sim._heap_max = time
            _heappush(sim._heap, (time, seq, self._deliver_fn, (packet,)))
        elif sim._fast:
            sim.schedule_anon(self.delay, self._deliver_fn, packet)
        else:
            self._schedule(self.delay, self._deliver_fn, packet)
        # Empty-queue fast exit: skip the poll round-trip.  Tests patch
        # offer, never poll, so reading the deque directly makes the
        # same decision poll() would.
        if self.queue._items or not self._plain_poll:
            self._transmit_next()
        else:
            self._busy = False

    def _deliver(self, packet: Packet) -> None:
        if self.faults is not None:
            self.faults.process(packet)
        else:
            self.deliver_now(packet)

    def deliver_now(self, packet: Packet) -> None:
        """Hand *packet* to the destination (the clean-path delivery)."""
        self.in_transit -= 1
        self.bytes_delivered += packet.size
        self.packets_delivered += 1
        if self.dst is not None:
            self.dst.receive(packet)

    def deliver_extra(self, packet: Packet) -> None:
        """Deliver a duplicate of an already-delivered packet."""
        self.bytes_delivered += packet.size
        self.packets_delivered += 1
        if self.dst is not None:
            self.dst.receive(packet)

    def note_fault_drop(self, packet: Packet) -> None:
        """Account for a packet an injected fault destroyed in flight."""
        self.in_transit -= 1

    @property
    def utilization_bytes(self) -> int:
        return self.bytes_delivered


class VariableRateChannel(Channel):
    """A channel that drains its queue at a time-varying rate.

    Instead of the closed-form ``packet.size / bandwidth``, each
    packet's serialisation time is the integral of a
    :class:`~repro.net.traces.BandwidthTrace` from the moment it is
    dequeued — so a rate change (or a zero-rate outage segment) in the
    middle of a transmission delays delivery by exactly the capacity
    lost, the way a mahimahi link defers delivery opportunities.

    ``loss`` adds stochastic per-packet loss *independent of queue
    drops*: each packet surviving to its delivery instant is destroyed
    with probability ``loss``, drawn from the caller-supplied seeded
    ``loss_rng`` so runs stay bit-reproducible.  Lost packets are
    counted in ``stochastic_losses`` (the invariant checker treats
    them like fault-absorbed packets).

    With a constant trace and ``loss=0`` the schedule degenerates to
    the parent's exact float arithmetic, so the channel is
    bit-identical to a static :class:`Channel` — the differential gate
    the baselines rely on.

    ``Channel.bandwidth`` is kept as the trace's cycle-mean rate: a
    nominal label for reports, never used in the drain computation.
    """

    def __init__(self, sim: Simulator, trace: BandwidthTrace, delay: float,
                 queue: DropTailQueue, name: str = "channel",
                 loss: float = 0.0,
                 loss_rng: Optional[random.Random] = None):
        super().__init__(sim, trace.mean_rate, delay, queue, name=name)
        self.trace = trace
        if not 0.0 <= loss < 1.0:
            raise ConfigurationError(
                f"channel {name!r}: loss must be in [0, 1), got {loss!r}")
        self.loss = loss
        self.stochastic_losses = 0
        if loss > 0.0:
            if loss_rng is None:
                raise ConfigurationError(
                    f"channel {name!r}: stochastic loss needs a seeded "
                    "loss_rng (determinism is part of the contract)")
            self._loss_rng = loss_rng
            # Wrap whatever delivery path the parent chose (clean or
            # faults-aware) behind the loss draw.
            self._post_loss_fn = self._deliver_fn
            self._deliver_fn = self._lossy_deliver

    def _transmit_next(self) -> None:
        packet = self.queue.poll(self.sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self.in_transit += 1
        self._schedule(self.trace.time_to_send(packet.size, self.sim.now),
                       self._tx_done, packet)

    def _lossy_deliver(self, packet: Packet) -> None:
        if self._loss_rng.random() < self.loss:
            self.stochastic_losses += 1
            self.in_transit -= 1
            return
        self._post_loss_fn(packet)


class Port:
    """A node's attachment point to a link or LAN.

    Forwarding tables map a destination host to a ``(port, next_node)``
    pair; the port knows how to hand a packet toward that next node.
    """

    def transmit(self, packet: Packet, next_node: "Node") -> bool:
        raise NotImplementedError

    def neighbors(self) -> List["Node"]:
        raise NotImplementedError


class _P2PPort(Port):
    def __init__(self, channel: Channel, neighbor: "Node"):
        self.channel = channel
        self.neighbor = neighbor
        # Same trick as _LanPort: Channel.send tolerates the next-hop
        # argument, so the forwarding entry calls it without paying a
        # wrapper frame on every forwarded packet.
        self.transmit = channel.send

    def neighbors(self) -> List["Node"]:
        return [self.neighbor]


class PointToPointLink:
    """A bidirectional point-to-point link between two nodes.

    Each direction gets its own egress queue; ``queue_capacity``
    expresses the router-buffer count of the paper (``None`` for an
    unbounded host-side queue).

    With ``trace`` set (a :class:`~repro.net.traces.BandwidthTrace`)
    both directions drain along that time-varying profile instead of
    the static ``bandwidth``, which then serves only as a nominal
    label.  ``loss`` adds seeded stochastic loss (independent of queue
    drops) to both directions; it requires ``loss_rng``, a
    ``random.Random`` shared by the two channels so the draw sequence
    stays a deterministic function of the run's event order.

    Parameters are validated once here — the link layer's uniform
    guard — before any channel or port is built, so a bad link never
    leaves half-attached ports behind.
    """

    def __init__(self, sim: Simulator, a: "Node", b: "Node", bandwidth: float,
                 delay: float, queue_capacity: Optional[int] = None,
                 name: str = "", queue_factory=None,
                 trace: Optional[BandwidthTrace] = None, loss: float = 0.0,
                 loss_rng: Optional[random.Random] = None):
        self.name = name or f"{a.name}<->{b.name}"
        self.a = a
        self.b = b
        self.trace = trace
        validate_link_params(
            bandwidth if trace is None else trace.mean_rate, delay,
            who=f"link {self.name!r}")
        if queue_factory is not None:
            qa = queue_factory(f"{a.name}->{b.name}")
            qb = queue_factory(f"{b.name}->{a.name}")
        else:
            qa = DropTailQueue(queue_capacity, name=f"{a.name}->{b.name}")
            qb = DropTailQueue(queue_capacity, name=f"{b.name}->{a.name}")
        if trace is not None or loss > 0.0:
            ch_trace = trace if trace is not None \
                else constant_trace(bandwidth, name=self.name)
            self.ab = VariableRateChannel(sim, ch_trace, delay, qa,
                                          name=qa.name, loss=loss,
                                          loss_rng=loss_rng)
            self.ba = VariableRateChannel(sim, ch_trace, delay, qb,
                                          name=qb.name, loss=loss,
                                          loss_rng=loss_rng)
        else:
            self.ab = Channel(sim, bandwidth, delay, qa, name=qa.name)
            self.ba = Channel(sim, bandwidth, delay, qb, name=qb.name)
        self.ab.dst = b
        self.ba.dst = a
        a.add_port(_P2PPort(self.ab, b))
        b.add_port(_P2PPort(self.ba, a))

    def channel_from(self, node: "Node") -> Channel:
        """The unidirectional channel whose traffic *node* originates."""
        if node is self.a:
            return self.ab
        if node is self.b:
            return self.ba
        raise ConfigurationError(f"{node.name} is not an endpoint of {self.name}")


class _LanPort(Port):
    def __init__(self, lan: "EthernetLan", owner: "Node"):
        self.lan = lan
        self.owner = owner
        # LAN send already takes (packet, dst_node) — expose it as this
        # port's transmit directly instead of paying a wrapper frame on
        # every forwarded packet.
        self.transmit = lan.send

    def neighbors(self) -> List["Node"]:
        return [n for n in self.lan.nodes if n is not self.owner]


class EthernetLan:
    """An abstract shared-medium LAN.

    Transmissions are serialised FCFS at ``bandwidth`` with ``latency``
    added per packet.  The attachment queue is unbounded — the paper's
    LANs never drop; all loss happens at the bottleneck router.
    """

    def __init__(self, sim: Simulator, bandwidth: float, latency: float,
                 name: str = "lan"):
        validate_link_params(bandwidth, latency, who=f"LAN {name!r}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self.nodes: List["Node"] = []
        self._node_set: set = set()
        self.queue = DropTailQueue(None, name=f"{name}.medium")
        self._busy = False
        # Destination of each queued transmission, FIFO-parallel to the
        # medium queue (which is unbounded and never drops, so the two
        # stay in lockstep).  Per-transmission, not per-uid: a
        # duplicated packet (same uid, injected twice) must reach its
        # destination both times.
        self._dsts: Deque["Node"] = deque()
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self.in_transit = 0
        #: Packets that began serialising on an idle medium without
        #: touching the attachment queue (the idle-bypass in ``send``).
        #: The conservation audit adds this to ``queue.dequeued``.
        self.bypassed = 0
        checker = checks_runtime.active()
        if checker is not None:
            checker.register_lan(self)
        # Same scheduler binding as Channel; queue methods stay late-
        # bound (they are a patch seam for targeted-drop tests).
        self._schedule = sim.schedule_anon
        self._tx_done_b = self._tx_done
        self._deliver_b = self._deliver

    def attach(self, node: "Node") -> None:
        """Connect *node* to this LAN."""
        if node in self._node_set:
            raise ConfigurationError(f"{node.name} already attached to {self.name}")
        self.nodes.append(node)
        self._node_set.add(node)
        node.add_port(_LanPort(self, node))

    def send(self, packet: Packet, dst_node: "Node") -> bool:
        if dst_node not in self._node_set:
            raise ConfigurationError(
                f"{dst_node.name} is not attached to {self.name}")
        sim = self.sim
        if not self._busy:
            # Idle medium: the queue round-trip (offer, then the
            # immediate poll in _transmit_next) is pure bookkeeping —
            # serialise directly.  The medium queue only ever holds
            # packets that arrive while the wire is busy.
            self._busy = True
            self.in_transit += 1
            self.bypassed += 1
            if sim._fast and not sim._far_count:
                seq = sim._seq
                sim._seq = seq + 1
                sim._live += 1
                time = sim.now + packet.size / self.bandwidth
                if time > sim._heap_max:
                    sim._heap_max = time
                _heappush(sim._heap,
                          (time, seq, self._tx_done_b, (packet, dst_node)))
            elif sim._fast:
                sim.schedule_anon(packet.size / self.bandwidth,
                                  self._tx_done_b, packet, dst_node)
            else:
                self._schedule(packet.size / self.bandwidth, self._tx_done,
                               packet, dst_node)
            return True
        # The dst FIFO mirrors the medium queue entry for entry.  The
        # medium is unbounded so offers normally always succeed, but a
        # patched/lossy queue must not desynchronise the two.
        if self.queue.offer(packet, sim.now):
            self._dsts.append(dst_node)
        return True

    def _transmit_next(self) -> None:
        sim = self.sim
        packet = self.queue.poll(sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self.in_transit += 1
        # Inline anonymous-event push; see Channel._transmit_next.
        if sim._fast and not sim._far_count:
            seq = sim._seq
            sim._seq = seq + 1
            sim._live += 1
            time = sim.now + packet.size / self.bandwidth
            if time > sim._heap_max:
                sim._heap_max = time
            _heappush(sim._heap,
                      (time, seq, self._tx_done_b,
                       (packet, self._dsts.popleft())))
        elif sim._fast:
            sim.schedule_anon(packet.size / self.bandwidth,
                              self._tx_done_b, packet, self._dsts.popleft())
        else:
            self._schedule(packet.size / self.bandwidth, self._tx_done,
                           packet, self._dsts.popleft())

    def _tx_done(self, packet: Packet, dst: "Node") -> None:
        sim = self.sim
        if sim._fast and not sim._far_count:
            seq = sim._seq
            sim._seq = seq + 1
            sim._live += 1
            time = sim.now + self.latency
            if time > sim._heap_max:
                sim._heap_max = time
            _heappush(sim._heap, (time, seq, self._deliver_b, (packet, dst)))
        elif sim._fast:
            sim.schedule_anon(self.latency, self._deliver_b, packet, dst)
        else:
            self._schedule(self.latency, self._deliver, packet, dst)
        # The dst FIFO is in lockstep with the medium queue, so an
        # empty _dsts means nothing is queued: skip the poll call.
        if self._dsts:
            self._transmit_next()
        else:
            self._busy = False

    def _deliver(self, packet: Packet, dst: "Node") -> None:
        self.in_transit -= 1
        self.bytes_delivered += packet.size
        self.packets_delivered += 1
        dst.receive(packet)
