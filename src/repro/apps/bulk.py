"""Bulk-transfer application.

Models the paper's measured workloads: "a 1 MB transfer", "a 300 KB
transfer", etc.  The sender opens a connection, keeps the socket
buffer full until ``total_bytes`` have been queued, then closes.  A
:class:`BulkSink` listens on the receiving host and simply drains
(the default connection behaviour already consumes in-order data).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tcp.connection import TCPConnection
from repro.tcp.protocol import TCPProtocol

#: How much the application tries to write per wakeup; anything larger
#: than the socket buffer behaves identically.
_WRITE_CHUNK = 64 * 1024


class BulkTransfer:
    """Send ``total_bytes`` over one TCP connection and close.

    The transfer is *started* by construction (the SYN goes out
    immediately); to delay it, schedule the construction itself::

        sim.schedule(2.5, lambda: BulkTransfer(proto, "Host1b", 7001, kb(300)))

    Attributes:
        conn: the underlying connection (stats live in ``conn.stats``).
        done: True once every byte has been acknowledged.
        finish_time: simulated time of the final acknowledgement.
    """

    def __init__(self, protocol: TCPProtocol, remote_addr: str,
                 remote_port: int, total_bytes: int,
                 cc: object = None,
                 on_done: Optional[Callable[["BulkTransfer"], None]] = None,
                 close_when_done: bool = True,
                 **conn_options):
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.total_bytes = total_bytes
        self.remaining = total_bytes
        self.on_done = on_done
        self.close_when_done = close_when_done
        self.done = False
        self.finish_time: Optional[float] = None
        self.conn = protocol.connect(remote_addr, remote_port, cc=cc,
                                     **conn_options)
        self.conn.on_established = self._pump
        self.conn.on_send_space = self._pump

    def _pump(self, conn: TCPConnection) -> None:
        while self.remaining > 0:
            accepted = conn.app_send(min(self.remaining, _WRITE_CHUNK))
            if accepted == 0:
                break
            self.remaining -= accepted
        if (self.remaining == 0 and not self.done
                and conn.stats.app_bytes_acked >= self.total_bytes):
            self.done = True
            self.finish_time = conn.now
            if self.close_when_done:
                conn.close()
            if self.on_done is not None:
                self.on_done(self)

    # ------------------------------------------------------------------
    # Result accessors (the paper's table columns)
    # ------------------------------------------------------------------
    @property
    def throughput_kbps(self) -> float:
        return self.conn.stats.throughput_kbps()

    @property
    def retransmitted_kb(self) -> float:
        return self.conn.stats.retransmitted_kb()

    @property
    def coarse_timeouts(self) -> int:
        return self.conn.stats.coarse_timeouts


class BulkSink:
    """Listen on a port and drain whatever arrives.

    Accepted connections close in response to the sender's FIN (the
    connection's default behaviour), so a simulation with only bulk
    transfers runs to quiescence by itself.
    """

    def __init__(self, protocol: TCPProtocol, port: int, cc: object = None,
                 **options):
        self.connections = []
        self.bytes_received = 0

        def _accept(conn: TCPConnection) -> None:
            self.connections.append(conn)
            conn.on_data = self._on_data

        self.listener = protocol.listen(port, cc=cc, on_accept=_accept,
                                        **options)

    def _on_data(self, conn: TCPConnection, nbytes: int) -> None:
        self.bytes_received += nbytes
