"""Applications that run on top of the TCP stack."""

from repro.apps.bulk import BulkSink, BulkTransfer

__all__ = ["BulkSink", "BulkTransfer"]
