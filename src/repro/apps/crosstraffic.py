"""Exogenous cross-traffic sources for the Internet emulation.

The paper's Tables 4 and 5 come from live Internet runs over a 17-hop
UA→NIH path, where loss and delay are caused by *other people's*
traffic.  In the emulation (see DESIGN.md's substitution table) that
role is played by :class:`CrossTrafficSource`: an on/off packet
injector attached to one interior link.  During ON periods it emits
fixed-size packets at a configurable burst rate (typically above the
link capacity, so queues fill and drop); ON/OFF durations are
exponential.  The long-run average load is::

    burst_rate * on_mean / (on_mean + off_mean)

These sources are deliberately *not* TCP — they model the aggregate,
uncontrolled arrival process a 1994 backbone queue saw, and their
burstiness is what exercises Reno's and Vegas' loss recovery.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.net.node import Host
from repro.net.packet import Packet


class CrossTrafficSource:
    """On/off Poisson-burst packet injector between two hosts."""

    def __init__(self, src: Host, dst_addr: str, rng: random.Random,
                 burst_rate: float, packet_size: int = 512,
                 on_mean: float = 0.5, off_mean: float = 1.5,
                 steady: bool = False):
        if burst_rate <= 0:
            raise ConfigurationError("burst_rate must be positive")
        if packet_size <= 0:
            raise ConfigurationError("packet_size must be positive")
        self.src = src
        self.sim = src.sim
        self.dst_addr = dst_addr
        self.rng = rng
        self.burst_rate = burst_rate
        self.packet_size = packet_size
        self.on_mean = on_mean
        self.off_mean = off_mean
        #: steady=True sends Poisson packets at burst_rate continuously
        #: (a smooth aggregate that adds queueing delay, not loss).
        self.steady = steady
        self._on = False
        self._running = False
        self.packets_sent = 0
        self.bytes_sent = 0

    @property
    def average_rate(self) -> float:
        """Long-run offered load in bytes/second."""
        if self.steady:
            return self.burst_rate
        duty = self.on_mean / (self.on_mean + self.off_mean)
        return self.burst_rate * duty

    def start(self, delay: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        if self.steady:
            self._on = True
            self.sim.schedule_anon(
                delay + self.rng.expovariate(self.burst_rate / self.packet_size),
                self._emit)
            return
        # Begin in a random phase of the off period.
        self.sim.schedule_anon(delay + self.rng.expovariate(1.0 / self.off_mean),
                               self._burst_start)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _burst_start(self) -> None:
        if not self._running:
            return
        self._on = True
        duration = self.rng.expovariate(1.0 / self.on_mean)
        self.sim.schedule_anon(duration, self._burst_end)
        self._emit()

    def _burst_end(self) -> None:
        self._on = False
        if self._running:
            self.sim.schedule_anon(self.rng.expovariate(1.0 / self.off_mean),
                                   self._burst_start)

    def _emit(self) -> None:
        if not self._on or not self._running:
            return
        packet = Packet(self.src.name, self.dst_addr, payload=None,
                        size=self.packet_size, created_at=self.sim.now)
        self.src.send_packet(packet)
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        # Poisson within the burst: exponential gaps at the burst rate.
        gap = self.rng.expovariate(self.burst_rate / self.packet_size)
        self.sim.schedule_anon(gap, self._emit)
