"""The TRAFFIC protocol: tcplib-driven background load.

"TRAFFIC starts conversations with interarrival times given by an
exponential distribution.  Each conversation can be of type TELNET,
FTP, NNTP, or SMTP ... each of these conversations runs on top of its
own TCP connection."  (§2.1)

A :class:`TrafficServer` installs the well-known-port listeners on the
destination host; a :class:`TrafficGenerator` on the source host draws
conversation types and parameters and launches them.  The generator
reports the offered/achieved statistics the paper plots in Figure 9's
bottom panel and tabulates in Table 3.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.sim.rng import weighted_choice
from repro.tcp.connection import TCPConnection
from repro.tcp.protocol import TCPProtocol
from repro.trafficgen import distributions as D
from repro.trafficgen.conversations import CONVERSATION_TYPES, Conversation


class TrafficServer:
    """Server side of TRAFFIC: listeners with per-type behaviour.

    * telnet: echo a few bytes per keystroke (reverse chatter);
    * ftp control: short command replies;
    * ftp-data / smtp / nntp: sink.
    """

    def __init__(self, protocol: TCPProtocol, rng: random.Random,
                 cc_factory: Callable):
        self.protocol = protocol
        self.rng = rng
        self.bytes_received = 0

        def _sink(conn: TCPConnection) -> None:
            conn.on_data = self._count

        def _echo(conn: TCPConnection) -> None:
            conn.on_data = self._echo_data

        def _control(conn: TCPConnection) -> None:
            conn.on_data = self._control_reply

        protocol.listen(D.PORTS["telnet"], cc=cc_factory, on_accept=_echo,
                        nagle=False)
        protocol.listen(D.PORTS["ftp"], cc=cc_factory, on_accept=_control,
                        nagle=False)
        protocol.listen(D.PORTS["ftp-data"], cc=cc_factory, on_accept=_sink)
        protocol.listen(D.PORTS["smtp"], cc=cc_factory, on_accept=_sink)
        protocol.listen(D.PORTS["nntp"], cc=cc_factory, on_accept=_sink)

    def _count(self, conn: TCPConnection, nbytes: int) -> None:
        self.bytes_received += nbytes

    def _echo_data(self, conn: TCPConnection, nbytes: int) -> None:
        self.bytes_received += nbytes
        if not conn.fin_pending and not conn.fin_sent:
            conn.app_send(self.rng.randrange(1, 30))

    def _control_reply(self, conn: TCPConnection, nbytes: int) -> None:
        self.bytes_received += nbytes
        if not conn.fin_pending and not conn.fin_sent:
            conn.app_send(self.rng.randrange(20, 60))


class TrafficGenerator:
    """Client side of TRAFFIC: exponential conversation arrivals.

    Args:
        client: protocol instance on the traffic source host.
        server_addr: destination host name (must run a TrafficServer).
        rng: random stream for arrivals and conversation parameters.
        cc_factory: congestion control used by the *background*
            connections (the paper runs Tables 2/3 with both Reno and
            Vegas here).
        arrival_mean: mean seconds between conversation starts.
        mix: conversation-type weights (defaults to tcplib-ish mix).
        stop_at: stop launching new conversations at this time
            (existing ones run to completion).
    """

    def __init__(self, client: TCPProtocol, server_addr: str,
                 rng: random.Random, cc_factory: Callable,
                 arrival_mean: float = 1.0,
                 mix: Optional[Dict[str, float]] = None,
                 stop_at: Optional[float] = None,
                 max_conversations: Optional[int] = None):
        self.client = client
        self.sim = client.sim
        self.server_addr = server_addr
        self.rng = rng
        self.cc_factory = cc_factory
        self.arrival_mean = arrival_mean
        self.mix = dict(mix) if mix is not None else dict(D.DEFAULT_MIX)
        self.stop_at = stop_at
        self.max_conversations = max_conversations
        self.conversations: List[Conversation] = []
        self.started_by_type: Dict[str, int] = {k: 0 for k in self.mix}
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin launching conversations."""
        self._running = True
        delay = (initial_delay if initial_delay is not None
                 else self.rng.expovariate(1.0 / self.arrival_mean))
        self.sim.schedule_anon(delay, self._launch_one)

    def start_prescheduled(self, initial_delay: float = 0.0) -> int:
        """Schedule the entire arrival process up front.

        Draws all ``max_conversations`` interarrival gaps now and
        schedules one launch event per conversation, instead of
        chaining each arrival off the previous one.  Used by the
        many-flows scaling family: the pre-scheduled start times are
        the far-future event population the engine's calendar
        scheduler is built for.  Requires ``max_conversations``;
        returns the number of launches scheduled.  The RNG draw order
        differs from chained :meth:`start`, so the two modes are
        distinct (deterministic) processes.
        """
        if self.max_conversations is None:
            raise ValueError("start_prescheduled requires max_conversations")
        self._running = True
        at = initial_delay
        scheduled = 0
        for _ in range(self.max_conversations):
            if self.stop_at is not None and at >= self.stop_at:
                break
            self.sim.schedule_anon(at, self._launch_scheduled)
            scheduled += 1
            at += self.rng.expovariate(1.0 / self.arrival_mean)
        return scheduled

    def stop(self) -> None:
        """Stop launching new conversations."""
        self._running = False

    def _launch_scheduled(self) -> None:
        if self._running:
            self._start_conversation()

    def _launch_one(self) -> None:
        if not self._running:
            return
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            self._running = False
            return
        if (self.max_conversations is not None
                and len(self.conversations) >= self.max_conversations):
            self._running = False
            return
        self._start_conversation()
        self.sim.schedule_anon(self.rng.expovariate(1.0 / self.arrival_mean),
                               self._launch_one)

    def _start_conversation(self) -> None:
        kind = weighted_choice(self.rng, self.mix)
        conv_cls = CONVERSATION_TYPES[kind]
        conv = conv_cls(self.client, self.server_addr, self.rng,
                        self.cc_factory)
        self.conversations.append(conv)
        self.started_by_type[kind] += 1
        conv.start()

    # ------------------------------------------------------------------
    # Statistics (Table 3 / Figure 9 / §6)
    # ------------------------------------------------------------------
    def total_bytes_acked(self) -> int:
        """Application bytes delivered by all background connections."""
        total = 0
        for conv in self.conversations:
            for conn in conv.connections:
                total += conn.stats.app_bytes_acked
        return total

    def throughput_kbps(self, t_start: float, t_end: float) -> float:
        """Aggregate background goodput over [t_start, t_end] in KB/s."""
        if t_end <= t_start:
            return 0.0
        return self.total_bytes_acked() / 1024.0 / (t_end - t_start)

    def total_retransmitted_kb(self) -> float:
        total = 0.0
        for conv in self.conversations:
            for conn in conv.connections:
                total += conn.stats.retransmitted_kb()
        return total

    def telnet_response_times(self) -> List[float]:
        """All keystroke→echo latencies measured so far (§6 metric)."""
        samples: List[float] = []
        for conv in self.conversations:
            if conv.kind == "telnet":
                samples.extend(conv.response_times)
        return samples

    def finished_count(self) -> int:
        return sum(1 for c in self.conversations if c.finished)
