"""Conversation state machines for the TRAFFIC protocol.

Each conversation runs over its own TCP connection(s), "exactly as the
paper's TRAFFIC protocol: each of these conversations runs on top of
its own TCP connection."  Data flows client→server (loading the same
bottleneck direction as the measured transfers), with TELNET echoes
and FTP control replies providing the reverse-direction chatter the
paper notes tcplib naturally produces.

The server side lives in :class:`repro.trafficgen.traffic.TrafficServer`.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.tcp.connection import TCPConnection
from repro.tcp.protocol import TCPProtocol
from repro.trafficgen import distributions as D


class Conversation:
    """Base class: lifecycle bookkeeping shared by all types."""

    kind = "base"

    def __init__(self, protocol: TCPProtocol, server_addr: str,
                 rng: random.Random, cc_factory: Callable,
                 on_finished: Optional[Callable[["Conversation"], None]] = None):
        self.protocol = protocol
        self.sim = protocol.sim
        self.server_addr = server_addr
        self.rng = rng
        self.cc_factory = cc_factory
        self.on_finished = on_finished
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.bytes_offered = 0
        self.connections: List[TCPConnection] = []

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    def start(self) -> None:
        self.started_at = self.sim.now
        self._run()

    def _run(self) -> None:
        raise NotImplementedError

    def _open(self, port: int, **options) -> TCPConnection:
        conn = self.protocol.connect(self.server_addr, port,
                                     cc=self.cc_factory(), **options)
        self.connections.append(conn)
        return conn

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished_at = self.sim.now
        if self.on_finished is not None:
            self.on_finished(self)

    @property
    def duration(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class _Pusher:
    """Push a fixed number of bytes on a connection, then call back.

    The bulk building block for FTP items, SMTP messages and NNTP
    articles: writes as the send buffer allows and reports completion
    when every byte has been acknowledged.
    """

    def __init__(self, conn: TCPConnection, nbytes: int,
                 done: Callable[[], None]):
        self.conn = conn
        self.remaining = nbytes
        self.target = conn.stats.app_bytes_queued + nbytes
        self.done = done
        self._fired = False
        conn.on_send_space = self._pump
        self._pump(conn)

    def _pump(self, conn: TCPConnection) -> None:
        while self.remaining > 0:
            accepted = conn.app_send(min(self.remaining, 16 * 1024))
            if accepted == 0:
                break
            self.remaining -= accepted
        if (self.remaining == 0 and not self._fired
                and conn.stats.app_bytes_acked >= self.target):
            self._fired = True
            conn.on_send_space = None
            self.done()


class TelnetConversation(Conversation):
    """Keystrokes with think times; the server echoes each one.

    Measures per-keystroke *response time* (send → echo), the metric
    §6 of the paper uses ("the average response time in TELNET
    connections is around 25% faster when using Vegas").
    """

    kind = "telnet"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.params = D.draw_telnet(self.rng)
        self.sent = 0
        self.response_times: List[float] = []
        self._pending_since: Optional[float] = None
        self.conn: Optional[TCPConnection] = None

    def _run(self) -> None:
        self.conn = self._open(D.PORTS["telnet"], nagle=False)
        self.conn.on_established = lambda c: self._schedule_keystroke()
        self.conn.on_data = self._on_echo

    def _schedule_keystroke(self) -> None:
        delay = self.rng.expovariate(1.0 / self.params.think_mean)
        self.sim.schedule_anon(delay, self._send_keystroke)

    def _send_keystroke(self) -> None:
        if self.conn is None or self.conn.fin_sent or self.conn.is_closed:
            return
        self.conn.app_send(1)
        self.bytes_offered += 1
        self.sent += 1
        self._pending_since = self.sim.now

    def _on_echo(self, conn: TCPConnection, nbytes: int) -> None:
        if self._pending_since is not None:
            self.response_times.append(self.sim.now - self._pending_since)
            self._pending_since = None
        if self.sent >= self.params.keystrokes:
            conn.close()
            self._finish()
        else:
            self._schedule_keystroke()


class FtpConversation(Conversation):
    """Control exchange, then one data connection per item (upload)."""

    kind = "ftp"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.params = D.draw_ftp(self.rng)
        self._item_index = 0
        self.control: Optional[TCPConnection] = None

    def _run(self) -> None:
        self.control = self._open(D.PORTS["ftp"], nagle=False)
        self.control.on_established = lambda c: self._request_next_item()
        self.control.on_data = self._on_control_reply

    def _request_next_item(self) -> None:
        if self.control is None or self.control.is_closed:
            return
        self.control.app_send(self.params.control_segment_size)
        self.bytes_offered += self.params.control_segment_size

    def _on_control_reply(self, conn: TCPConnection, nbytes: int) -> None:
        # Server acknowledged the command: ship the item.
        if self._item_index >= self.params.items:
            return
        size = self.params.item_sizes[self._item_index]
        self._item_index += 1
        data = self._open(D.PORTS["ftp-data"])
        self.bytes_offered += size

        def _item_done() -> None:
            data.close()
            if self._item_index < self.params.items:
                self.sim.schedule_anon(self.rng.uniform(0.1, 1.0),
                                       self._request_next_item)
            else:
                if self.control is not None:
                    self.control.close()
                self._finish()

        data.on_established = lambda c: _Pusher(c, size, _item_done)


class SmtpConversation(Conversation):
    """One connection, one message, close."""

    kind = "smtp"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.params = D.draw_smtp(self.rng)

    def _run(self) -> None:
        conn = self._open(D.PORTS["smtp"])
        size = self.params.message_size
        self.bytes_offered += size

        def _done() -> None:
            conn.close()
            self._finish()

        conn.on_established = lambda c: _Pusher(c, size, _done)


class NntpConversation(Conversation):
    """One connection, a batch of articles with small gaps."""

    kind = "nntp"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.params = D.draw_nntp(self.rng)
        self._index = 0
        self.conn: Optional[TCPConnection] = None

    def _run(self) -> None:
        self.conn = self._open(D.PORTS["nntp"])
        self.conn.on_established = lambda c: self._next_article()

    def _next_article(self) -> None:
        if self.conn is None:
            return
        if self._index >= self.params.articles:
            self.conn.close()
            self._finish()
            return
        size = self.params.article_sizes[self._index]
        self._index += 1
        self.bytes_offered += size
        _Pusher(self.conn, size,
                lambda: self.sim.schedule_anon(self.rng.uniform(0.05, 0.5),
                                               self._next_article))


#: Conversation type name -> class.
CONVERSATION_TYPES = {
    "telnet": TelnetConversation,
    "ftp": FtpConversation,
    "smtp": SmtpConversation,
    "nntp": NntpConversation,
}
