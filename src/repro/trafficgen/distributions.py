"""tcplib-style workload parameter distributions.

The paper's TRAFFIC protocol "implements TCP Internet traffic based on
tcplib" (Danzig & Jamin, 1991): conversations arrive with exponential
interarrival times; each is TELNET, FTP, NNTP or SMTP with parameters
drawn from trace-derived probability distributions.

The original tcplib tables are not redistributable here, so this
module provides documented parametric approximations with the same
qualitative character (heavy-tailed item sizes, geometric item counts,
bursty interactive packet arrivals).  Every distribution is exposed as
an explicit named function so experiments can cite exactly what the
background load was; DESIGN.md records this substitution.

All draws take an explicit ``random.Random`` so runs are reproducible
per-stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.sim.rng import bounded_geometric, exponential, lognormal_bytes

#: Conversation mix.  tcplib's 1991 traces were dominated by
#: interactive telnet conversations by count, but bulk types carry the
#: bytes; this mix produces bursty, FTP-heavy load on the bottleneck,
#: matching the congested conditions of the paper's Table 2.
DEFAULT_MIX: Dict[str, float] = {
    "telnet": 0.30,
    "ftp": 0.25,
    "smtp": 0.25,
    "nntp": 0.20,
}

#: Well-known destination ports per conversation type.
PORTS: Dict[str, int] = {
    "telnet": 23,
    "ftp": 21,
    "ftp-data": 20,
    "smtp": 25,
    "nntp": 119,
}


@dataclass
class TelnetParams:
    """A TELNET conversation: keystrokes with think times, echoed."""

    keystrokes: int
    think_mean: float  # seconds between keystrokes


@dataclass
class FtpParams:
    """An FTP conversation: control exchange plus data items.

    The paper names exactly these parameters: "FTP expects the
    following parameters: number of items to transmit, control segment
    size, and the item sizes."
    """

    items: int
    control_segment_size: int
    item_sizes: list


@dataclass
class SmtpParams:
    """An SMTP conversation: a single message push."""

    message_size: int


@dataclass
class NntpParams:
    """An NNTP conversation: a batch of articles."""

    articles: int
    article_sizes: list


def draw_telnet(rng: random.Random) -> TelnetParams:
    """TELNET: geometric keystroke count, sub-second think times.

    tcplib's telnet interarrivals are heavy-tailed with a sub-second
    mode; conversation lengths are geometric-ish with a long tail.
    """
    keystrokes = bounded_geometric(rng, mean=40, minimum=3, maximum=400)
    think_mean = 0.2 + exponential(rng, 0.5)
    return TelnetParams(keystrokes=keystrokes, think_mean=think_mean)


def draw_ftp(rng: random.Random) -> FtpParams:
    """FTP: a few items, log-normal sizes with a heavy tail."""
    items = bounded_geometric(rng, mean=3, minimum=1, maximum=20)
    control = 32 + rng.randrange(0, 64)
    sizes = [lognormal_bytes(rng, median=12 * 1024, sigma=1.3,
                             minimum=256, maximum=1024 * 1024)
             for _ in range(items)]
    return FtpParams(items=items, control_segment_size=control,
                     item_sizes=sizes)


def draw_smtp(rng: random.Random) -> SmtpParams:
    """SMTP: mostly small messages, occasionally tens of KB."""
    size = lognormal_bytes(rng, median=3 * 1024, sigma=1.0,
                           minimum=128, maximum=256 * 1024)
    return SmtpParams(message_size=size)


def draw_nntp(rng: random.Random) -> NntpParams:
    """NNTP: a handful of ~KB articles per session."""
    articles = bounded_geometric(rng, mean=6, minimum=1, maximum=50)
    sizes = [lognormal_bytes(rng, median=2 * 1024, sigma=0.8,
                             minimum=256, maximum=64 * 1024)
             for _ in range(articles)]
    return NntpParams(articles=articles, article_sizes=sizes)
