"""tcplib-style traffic generation (the paper's TRAFFIC protocol)."""

from repro.trafficgen.conversations import (
    CONVERSATION_TYPES,
    Conversation,
    FtpConversation,
    NntpConversation,
    SmtpConversation,
    TelnetConversation,
)
from repro.trafficgen.distributions import DEFAULT_MIX, PORTS
from repro.trafficgen.traffic import TrafficGenerator, TrafficServer

__all__ = [
    "CONVERSATION_TYPES",
    "Conversation",
    "TelnetConversation",
    "FtpConversation",
    "SmtpConversation",
    "NntpConversation",
    "DEFAULT_MIX",
    "PORTS",
    "TrafficGenerator",
    "TrafficServer",
]
