"""Measured-transfer driver and result records.

Every table in the paper reports the same per-transfer metrics:
throughput (KB/s), kilobytes retransmitted, and (Tables 2/4/5) the
number of coarse-grained timeouts.  :class:`TransferResult` captures
those from a finished :class:`~repro.apps.bulk.BulkTransfer`, and
:func:`start_measured_transfer` wires a transfer into a Figure-5
network with a sink on the destination host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.registry import cc_factory
from repro.experiments import defaults as DFLT
from repro.experiments.figure5 import Figure5Network
from repro.trace.tracer import ConnectionTracer

CCSpec = Union[str, Callable]


def resolve_cc(cc: CCSpec) -> Callable:
    """Accept either a registry name or a factory; return a factory."""
    if isinstance(cc, str):
        return cc_factory(cc)
    return cc


@dataclass
class TransferResult:
    """The paper's per-transfer metrics."""

    cc_name: str
    size_bytes: int
    done: bool
    throughput_kbps: float
    retransmitted_kb: float
    coarse_timeouts: int
    fast_retransmits: int
    fine_retransmits: int
    duration: Optional[float]

    @classmethod
    def from_transfer(cls, transfer: BulkTransfer,
                      cc_name: str = "") -> "TransferResult":
        stats = transfer.conn.stats
        return cls(
            cc_name=cc_name or type(transfer.conn.cc).name,
            size_bytes=transfer.total_bytes,
            done=transfer.done,
            throughput_kbps=stats.throughput_kbps(),
            retransmitted_kb=stats.retransmitted_kb(),
            coarse_timeouts=stats.coarse_timeouts,
            fast_retransmits=stats.fast_retransmits,
            fine_retransmits=stats.fine_retransmits,
            duration=stats.transfer_seconds,
        )


def start_measured_transfer(net: Figure5Network, cc: CCSpec,
                            size: int,
                            src: str = "Host2a", dst: str = "Host2b",
                            port: int = DFLT.TRANSFER_PORT,
                            start_at: float = 0.0,
                            sndbuf: int = DFLT.SOCKBUF,
                            rcvbuf: int = DFLT.SOCKBUF,
                            tracer: Optional[ConnectionTracer] = None):
    """Install a sink on *dst* and schedule a bulk transfer from *src*.

    Returns a one-element list that will hold the
    :class:`BulkTransfer` once it starts (transfers started at
    ``start_at > 0`` do not exist until then).
    """
    factory = resolve_cc(cc)
    BulkSink(net.protocol(dst), port)
    holder = [None]

    def _start() -> None:
        holder[0] = BulkTransfer(net.protocol(src), dst, port, size,
                                 cc=factory(), sndbuf=sndbuf, rcvbuf=rcvbuf,
                                 tracer=tracer)

    if start_at <= 0:
        _start()
    else:
        net.sim.schedule(start_at, _start)
    return holder


def run_solo_transfer(cc: CCSpec, size: int = DFLT.LARGE_TRANSFER,
                      buffers: int = DFLT.DEFAULT_BUFFERS,
                      seed: int = 0,
                      tracer: Optional[ConnectionTracer] = None,
                      sndbuf: int = DFLT.SOCKBUF,
                      horizon: float = DFLT.TRANSFER_HORIZON,
                      ) -> TransferResult:
    """One transfer, no competing traffic (the Figure 6/7 scenario)."""
    net = build_net(buffers=buffers, seed=seed)
    holder = start_measured_transfer(net, cc, size, src="Host1a",
                                     dst="Host1b", sndbuf=sndbuf,
                                     tracer=tracer)
    net.sim.run(until=horizon)
    name = cc if isinstance(cc, str) else ""
    return TransferResult.from_transfer(holder[0], cc_name=name)


def build_net(**kwargs) -> Figure5Network:
    """Convenience re-export to avoid circular imports in callers."""
    from repro.experiments.figure5 import build_figure5

    return build_figure5(**kwargs)
