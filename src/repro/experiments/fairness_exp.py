"""§4.3 "Multiple Competing Connections": fairness and stability.

"We ran simulations with 2, 4, and 16 connections sharing a bottleneck
link, where all the connections either had the same propagation delay,
or where one half of the connections had twice the propagation delay
of the other half. ... To judge fairness, we chose Jain's fairness
index. ... There were no stability problems in the case of 16
connections sharing the bottleneck link, even though there were only
20 buffers at the router."

Each connection gets its own source host with a private access link
(so propagation delays can differ per connection) into the shared
bottleneck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.experiments import defaults as DFLT
from repro.experiments.transfers import CCSpec, resolve_cc
from repro.metrics.fairness import jain_fairness_index
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.protocol import TCPProtocol
from repro.units import mb, mbps, ms


@dataclass
class FairnessResult:
    """Outcome of one multiple-connection run."""

    cc_name: str
    connections: int
    throughputs_kbps: List[float]
    fairness_index: float
    total_retransmit_kb: float
    coarse_timeouts: int
    all_done: bool

    @property
    def aggregate_throughput(self) -> float:
        return sum(self.throughputs_kbps)


def run_competing_connections(cc: CCSpec, count: int,
                              transfer_bytes: int = None,
                              mixed_delays: bool = False,
                              base_delay: float = ms(10),
                              buffers: int = 20,
                              seed: int = 0,
                              horizon: float = 600.0) -> FairnessResult:
    """*count* simultaneous transfers through one shared bottleneck.

    ``mixed_delays=True`` doubles the access propagation delay for the
    second half of the connections (the paper's 2:1 configuration).
    The default transfer size follows the paper: 8 MB for 2/4
    connections, 2 MB for 16.
    """
    if transfer_bytes is None:
        transfer_bytes = mb(8) if count <= 4 else mb(2)
    factory = resolve_cc(cc)
    sim = Simulator()
    topo = Topology(sim)
    rng = RngRegistry(seed)
    r1 = topo.add_router("R1")
    r2 = topo.add_router("R2")
    topo.add_link(r1, r2, bandwidth=DFLT.BOTTLENECK_BANDWIDTH,
                  delay=DFLT.BOTTLENECK_DELAY, queue_capacity=buffers,
                  name="bottleneck")
    sources, sinks = [], []
    for i in range(count):
        src = topo.add_host(f"S{i}")
        dst = topo.add_host(f"D{i}")
        delay = base_delay * (2 if mixed_delays and i >= count // 2 else 1)
        topo.add_link(src, r1, bandwidth=mbps(10), delay=delay,
                      queue_capacity=None, name=f"access{i}")
        topo.add_link(r2, dst, bandwidth=mbps(10), delay=ms(0.1),
                      queue_capacity=None, name=f"egress{i}")
        sources.append(src)
        sinks.append(dst)
    topo.build_routes()

    transfers: List[BulkTransfer] = []
    stagger = rng.stream("stagger")
    for i in range(count):
        sproto = TCPProtocol(sources[i], rng=random.Random(
            rng.stream(f"timer/s{i}").random()))
        dproto = TCPProtocol(sinks[i], rng=random.Random(
            rng.stream(f"timer/d{i}").random()))
        BulkSink(dproto, DFLT.TRANSFER_PORT)
        # Small random stagger so connections do not start in lockstep.
        delay = stagger.uniform(0.0, 0.25)
        holder_proto = sproto

        def _start(proto=holder_proto, dst_name=sinks[i].name) -> None:
            transfers.append(BulkTransfer(proto, dst_name,
                                          DFLT.TRANSFER_PORT,
                                          transfer_bytes, cc=factory()))

        sim.schedule(delay, _start)
    sim.run(until=horizon)

    throughputs = [t.conn.stats.throughput_kbps() for t in transfers]
    name = cc if isinstance(cc, str) else "custom"
    return FairnessResult(
        cc_name=name,
        connections=count,
        throughputs_kbps=throughputs,
        fairness_index=jain_fairness_index(throughputs) if throughputs else 0.0,
        total_retransmit_kb=sum(t.conn.stats.retransmitted_kb()
                                for t in transfers),
        coarse_timeouts=sum(t.conn.stats.coarse_timeouts for t in transfers),
        all_done=all(t.done for t in transfers) and len(transfers) == count,
    )


def fairness_comparison(counts: Sequence[int] = (2, 4, 16),
                        seeds: Sequence[int] = (0, 1),
                        ) -> List[FairnessResult]:
    """The paper's fairness grid: Reno vs Vegas, equal and 2:1 delays."""
    results: List[FairnessResult] = []
    for count in counts:
        for cc in ("reno", "vegas"):
            for mixed in (False, True):
                for seed in seeds:
                    result = run_competing_connections(
                        cc, count, mixed_delays=mixed, seed=seed)
                    result.cc_name = f"{cc}{'/mixed' if mixed else '/equal'}"
                    results.append(result)
    return results
