"""Engine-scaling workload: hundreds of concurrent tcplib conversations.

The paper's experiments never exceed a few dozen simultaneous
connections, but the engine work this repo layers on top (flat
connection state, the far-horizon calendar scheduler) is motivated by
much denser populations.  This family is the benchmark for that
claim: ``flows`` tcplib conversations — the same TRAFFIC mix the
Table-2/3 background uses — launched across all three Figure-5 host
pairs so they contend on the classic bottleneck.

Each host pair gets its own :class:`~repro.trafficgen.TrafficGenerator`
with a third of the conversation budget; arrival means are scaled so
the whole population launches inside ``launch_window`` seconds and the
run then drains until ``horizon``.  Everything is seeded through the
usual :class:`~repro.sim.rng.RngRegistry` streams, so a ``(flows,
seed)`` pair fully determines the run and its metrics participate in
the determinism gates like any paper cell.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments import defaults as DFLT
from repro.experiments.figure5 import build_figure5
from repro.experiments.transfers import resolve_cc
from repro.sim.engine import last_simulator

#: The three Figure-5 source/destination pairings used to spread the
#: conversation population across access LANs.
HOST_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("Host1a", "Host1b"),
    ("Host2a", "Host2b"),
    ("Host3a", "Host3b"),
)

#: Bench points for the many-flows family (see ``repro bench``).
BENCH_FLOW_COUNTS: Tuple[int, ...] = (100, 500, 1000)


@dataclass
class ManyFlowsResult:
    """Aggregate outcome of one many-flows run."""

    flows: int
    conversations_started: int
    conversations_finished: int
    events_processed: int
    throughput_kbps: float
    retransmit_kb: float
    far_events_peak: int


def run_many_flows(flows: int = 100, seed: int = 0,
                   cc: str = "reno",
                   buffers: int = DFLT.DEFAULT_BUFFERS,
                   launch_window: float = 12.0,
                   horizon: float = 20.0) -> ManyFlowsResult:
    """Run *flows* tcplib conversations over the Figure-5 bottleneck.

    The conversation budget is split evenly over the three host pairs
    (remainders go to the earlier pairs); each generator stops
    launching once its share is reached, and the simulation runs to
    *horizon* so in-flight conversations can drain.
    """
    from repro.trafficgen import TrafficGenerator, TrafficServer

    if flows < len(HOST_PAIRS):
        raise ValueError(f"flows must be >= {len(HOST_PAIRS)}, got {flows}")
    net = build_figure5(buffers=buffers, seed=seed)
    factory = resolve_cc(cc)
    share, extra = divmod(flows, len(HOST_PAIRS))
    generators: List[TrafficGenerator] = []
    for idx, (src, dst) in enumerate(HOST_PAIRS):
        quota = share + (1 if idx < extra else 0)
        rng = random.Random(net.rng.stream(f"many-flows-{idx}").random())
        TrafficServer(net.protocol(dst), rng, factory)
        # Mean interarrival so this generator's quota lands inside the
        # launch window in expectation.
        gen = TrafficGenerator(net.protocol(src), dst, rng, factory,
                               arrival_mean=launch_window / max(quota, 1),
                               max_conversations=quota)
        # The whole arrival process is scheduled up front: those start
        # times are the far-future population the engine's calendar
        # scheduler parks outside the heap.
        gen.start_prescheduled(0.0)
        generators.append(gen)

    net.sim.run(until=horizon)
    for gen in generators:
        gen.stop()

    sim = net.sim
    end = min(horizon, sim.now)
    started = sum(len(g.conversations) for g in generators)
    finished = sum(g.finished_count() for g in generators)
    throughput = sum(g.throughput_kbps(0.0, end) for g in generators)
    retransmit = sum(g.total_retransmitted_kb() for g in generators)
    return ManyFlowsResult(
        flows=flows,
        conversations_started=started,
        conversations_finished=finished,
        events_processed=sim.events_processed,
        throughput_kbps=throughput,
        retransmit_kb=retransmit,
        far_events_peak=sim.far_events_peak,
    )


def many_flows_metrics(flows: int, seed: int) -> Dict[str, float]:
    """Flat metric dict for the harness registry / bench suite."""
    result = run_many_flows(flows=flows, seed=seed)
    return {
        "conversations_started": result.conversations_started,
        "conversations_finished": result.conversations_finished,
        "throughput_kbps": result.throughput_kbps,
        "retransmit_kb": result.retransmit_kb,
        "far_events_peak": result.far_events_peak,
    }
