"""§6: interactive response time in an all-Vegas world.

"Simulations running tcplib traffic over both Reno and Vegas show that
the average response time in TELNET connections is around 25% faster
when using Vegas as compared to Reno."

We run the TRAFFIC workload alone (no bulk transfer) with every
connection using the same protocol, and measure keystroke→echo
latency at the TELNET clients.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List

from repro.experiments import defaults as DFLT
from repro.experiments.figure5 import build_figure5
from repro.experiments.transfers import CCSpec, resolve_cc


@dataclass
class TelnetResponseResult:
    """Response-time statistics for one all-X-protocol TRAFFIC run."""

    cc_name: str
    samples: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.samples) if self.samples else 0.0

    @property
    def p95(self) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def run_telnet_response(cc: CCSpec, seed: int = 0,
                        buffers: int = DFLT.DEFAULT_BUFFERS,
                        arrival_mean: float = DFLT.TRAFFIC_ARRIVAL_MEAN,
                        duration: float = 120.0) -> TelnetResponseResult:
    """TRAFFIC-only run with every connection using *cc*."""
    from repro.trafficgen import TrafficGenerator, TrafficServer

    factory = resolve_cc(cc)
    net = build_figure5(buffers=buffers, seed=seed)
    rng = random.Random(net.rng.stream("traffic").random())
    TrafficServer(net.protocol("Host1b"), rng, factory)
    generator = TrafficGenerator(net.protocol("Host1a"), "Host1b", rng,
                                 factory, arrival_mean=arrival_mean)
    generator.start(0.0)
    net.sim.run(until=duration)
    generator.stop()
    name = cc if isinstance(cc, str) else "custom"
    return TelnetResponseResult(cc_name=name,
                                samples=generator.telnet_response_times())


def response_time_comparison(seeds=range(3), **kwargs):
    """Mean TELNET response time, all-Reno vs all-Vegas.

    Returns ``{"reno": mean_seconds, "vegas": mean_seconds}`` pooled
    across seeds.
    """
    pooled = {"reno": [], "vegas": []}
    for cc in ("reno", "vegas"):
        for seed in seeds:
            result = run_telnet_response(cc, seed=seed, **kwargs)
            pooled[cc].extend(result.samples)
    return {cc: (statistics.fmean(samples) if samples else 0.0)
            for cc, samples in pooled.items()}
