"""Dynamics: how flows converge and share when demand changes.

Not a numbered artifact of the paper, but directly probes its §4.1/§6
claims — Vegas "is not an aggressive retransmission strategy that
steals bandwidth" and responds to "transient increases in the
available network bandwidth".  Two scenarios:

* **join**: flow A runs alone, flow B joins mid-stream.  We measure
  each flow's rate before/during/after and how equally the pair share
  while both are active.
* **leave**: both start together, A finishes early; we measure how
  quickly B absorbs the freed bandwidth (the "respond rapidly to
  transient increases" property that keeping α extra segments in the
  network buys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.experiments import defaults as DFLT
from repro.experiments.figure5 import build_figure5
from repro.experiments.transfers import CCSpec, resolve_cc
from repro.metrics.sampler import RateSampler
from repro.units import mb


@dataclass
class JoinResult:
    """Per-phase rates for the join scenario (KB/s)."""

    cc_name: str
    solo_rate: float          # A alone, before B joins
    shared_rate_a: float      # A while sharing
    shared_rate_b: float      # B while sharing
    recovered_rate_b: float   # B after A finished

    @property
    def share_balance(self) -> float:
        """min/max of the two shared rates (1.0 = perfectly equal)."""
        hi = max(self.shared_rate_a, self.shared_rate_b)
        if hi == 0:
            return 1.0
        return min(self.shared_rate_a, self.shared_rate_b) / hi


def run_join_scenario(cc: CCSpec, join_at: float = 8.0,
                      buffers: int = 20, seed: int = 0,
                      horizon: float = 120.0) -> JoinResult:
    """Flow A (3 MB) runs alone; flow B (2 MB) joins at *join_at*."""
    factory = resolve_cc(cc)
    net = build_figure5(buffers=buffers, seed=seed)
    BulkSink(net.protocol("Host1b"), DFLT.TRANSFER_PORT)
    BulkSink(net.protocol("Host2b"), DFLT.TRANSFER_PORT)

    flow_a = BulkTransfer(net.protocol("Host1a"), "Host1b",
                          DFLT.TRANSFER_PORT, mb(3), cc=factory())
    flow_b_holder: List[BulkTransfer] = []

    def _start_b() -> None:
        flow_b_holder.append(BulkTransfer(net.protocol("Host2a"), "Host2b",
                                          DFLT.TRANSFER_PORT, mb(2),
                                          cc=factory()))

    net.sim.schedule(join_at, _start_b)
    sampler_a = RateSampler(net.sim,
                            lambda: flow_a.conn.stats.app_bytes_acked,
                            interval=0.25)
    sampler_b = RateSampler(
        net.sim,
        lambda: (flow_b_holder[0].conn.stats.app_bytes_acked
                 if flow_b_holder else 0),
        interval=0.25)
    sampler_a.start()
    sampler_b.start()
    net.sim.run(until=horizon)
    a_done = flow_a.finish_time or horizon
    b = flow_b_holder[0]
    b_done = b.finish_time or horizon

    shared_end = min(a_done, b_done)
    name = cc if isinstance(cc, str) else "custom"
    return JoinResult(
        cc_name=name,
        solo_rate=sampler_a.mean_rate(2.0, join_at) / 1024.0,
        shared_rate_a=sampler_a.mean_rate(join_at + 2.0, shared_end) / 1024.0,
        shared_rate_b=sampler_b.mean_rate(join_at + 2.0, shared_end) / 1024.0,
        recovered_rate_b=(sampler_b.mean_rate(a_done + 1.0, b_done) / 1024.0
                          if b_done > a_done + 1.5 else 0.0),
    )


@dataclass
class LeaveResult:
    """How fast the survivor absorbs freed bandwidth (KB/s)."""

    cc_name: str
    shared_rate: float      # survivor's rate while sharing
    takeover_rate: float    # survivor's rate 0-3 s after the leaver ends
    settled_rate: float     # survivor's rate 3-8 s after


def run_leave_scenario(cc: CCSpec, buffers: int = 20, seed: int = 0,
                       horizon: float = 180.0) -> LeaveResult:
    """A (1 MB) and B (4 MB) start together; A finishes first."""
    factory = resolve_cc(cc)
    net = build_figure5(buffers=buffers, seed=seed)
    BulkSink(net.protocol("Host1b"), DFLT.TRANSFER_PORT)
    BulkSink(net.protocol("Host2b"), DFLT.TRANSFER_PORT)
    leaver = BulkTransfer(net.protocol("Host1a"), "Host1b",
                          DFLT.TRANSFER_PORT, mb(1), cc=factory())
    survivor = BulkTransfer(net.protocol("Host2a"), "Host2b",
                            DFLT.TRANSFER_PORT, mb(4), cc=factory())
    sampler = RateSampler(net.sim,
                          lambda: survivor.conn.stats.app_bytes_acked,
                          interval=0.25)
    sampler.start()
    net.sim.run(until=horizon)
    t_leave = leaver.finish_time or horizon
    name = cc if isinstance(cc, str) else "custom"
    return LeaveResult(
        cc_name=name,
        shared_rate=sampler.mean_rate(3.0, t_leave) / 1024.0,
        takeover_rate=sampler.mean_rate(t_leave, t_leave + 3.0) / 1024.0,
        settled_rate=sampler.mean_rate(t_leave + 3.0, t_leave + 8.0) / 1024.0,
    )
