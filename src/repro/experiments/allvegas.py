"""§6: "what happens when the whole world runs Vegas".

"Simulations show that if there are enough buffers in the routers ...
a higher throughput and a faster response time result."  And the
flip side: "As the load increases and/or the number of router buffers
decreases, Vegas's congestion avoidance mechanisms are not as
effective, and Vegas starts to behave more like Reno."

:func:`run_world` drives the TRAFFIC workload with *every* connection
using one protocol and reports aggregate goodput, retransmissions and
TELNET response times; sweeping the router buffer count exposes the
degeneracy the paper predicts.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List

from repro.experiments import defaults as DFLT
from repro.experiments.figure5 import build_figure5
from repro.experiments.transfers import CCSpec, resolve_cc


@dataclass
class WorldResult:
    """Aggregate outcome of one all-one-protocol TRAFFIC run."""

    cc_name: str
    buffers: int
    goodput_kbps: float
    retransmit_kb: float
    coarse_timeouts: int
    conversations: int
    telnet_mean_response: float

    @property
    def retransmit_fraction(self) -> float:
        """Retransmitted bytes relative to delivered bytes."""
        delivered_kb = self.goodput_kbps and self.goodput_kbps
        if delivered_kb == 0:
            return 0.0
        return self.retransmit_kb / max(1e-9, delivered_kb)


def run_world(cc: CCSpec, buffers: int = DFLT.DEFAULT_BUFFERS,
              seed: int = 0, arrival_mean: float = 0.25,
              duration: float = 120.0) -> WorldResult:
    """TRAFFIC-only run where every connection uses *cc*."""
    from repro.trafficgen import TrafficGenerator, TrafficServer

    factory = resolve_cc(cc)
    net = build_figure5(buffers=buffers, seed=seed)
    rng = random.Random(net.rng.stream("traffic").random())
    TrafficServer(net.protocol("Host1b"), rng, factory)
    generator = TrafficGenerator(net.protocol("Host1a"), "Host1b", rng,
                                 factory, arrival_mean=arrival_mean)
    generator.start(0.0)
    net.sim.run(until=duration)
    generator.stop()

    timeouts = 0
    for conv in generator.conversations:
        for conn in conv.connections:
            timeouts += conn.stats.coarse_timeouts
    samples = generator.telnet_response_times()
    name = cc if isinstance(cc, str) else "custom"
    return WorldResult(
        cc_name=name,
        buffers=buffers,
        goodput_kbps=generator.throughput_kbps(0.0, duration),
        retransmit_kb=generator.total_retransmitted_kb(),
        coarse_timeouts=timeouts,
        conversations=len(generator.conversations),
        telnet_mean_response=(statistics.fmean(samples) if samples else 0.0),
    )


def buffer_sweep(buffer_counts=(4, 10, 20), seeds=(0, 1),
                 **kwargs) -> List[WorldResult]:
    """All-Reno vs all-Vegas worlds across router buffer counts.

    Returns one averaged WorldResult per (cc, buffers) pair.
    """
    results: List[WorldResult] = []
    for buffers in buffer_counts:
        for cc in ("reno", "vegas"):
            runs = [run_world(cc, buffers=buffers, seed=s, **kwargs)
                    for s in seeds]
            n = len(runs)
            results.append(WorldResult(
                cc_name=cc,
                buffers=buffers,
                goodput_kbps=sum(r.goodput_kbps for r in runs) / n,
                retransmit_kb=sum(r.retransmit_kb for r in runs) / n,
                coarse_timeouts=round(sum(r.coarse_timeouts
                                          for r in runs) / n),
                conversations=round(sum(r.conversations for r in runs) / n),
                telnet_mean_response=sum(r.telnet_mean_response
                                         for r in runs) / n,
            ))
    return results
