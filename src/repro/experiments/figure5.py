"""The Figure-5 simulation network.

Three source hosts on access Ethernets into Router1, a configurable
bottleneck link Router1→Router2, and three destination hosts behind
Router2.  Every host gets its own TCP protocol stack; the bottleneck
queues (both directions) are exposed for tracing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.experiments import defaults as DFLT
from repro.net.link import PointToPointLink
from repro.net.node import Host
from repro.net.queue import DropTailQueue
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.protocol import TCPProtocol

HOST_NAMES = ("Host1a", "Host2a", "Host3a", "Host1b", "Host2b", "Host3b")


@dataclass
class Figure5Network:
    """A built Figure-5 network ready for experiments."""

    sim: Simulator
    topology: Topology
    rng: RngRegistry
    hosts: Dict[str, Host] = field(default_factory=dict)
    protocols: Dict[str, TCPProtocol] = field(default_factory=dict)
    bottleneck: PointToPointLink = None

    @property
    def forward_queue(self) -> DropTailQueue:
        """The Router1→Router2 egress queue (the paper's buffers)."""
        return self.bottleneck.channel_from(
            self.topology.router("Router1")).queue

    @property
    def reverse_queue(self) -> DropTailQueue:
        return self.bottleneck.channel_from(
            self.topology.router("Router2")).queue

    def protocol(self, host: str) -> TCPProtocol:
        return self.protocols[host]


def build_figure5(buffers: int = DFLT.DEFAULT_BUFFERS,
                  bandwidth: float = DFLT.BOTTLENECK_BANDWIDTH,
                  delay: float = DFLT.BOTTLENECK_DELAY,
                  seed: int = 0) -> Figure5Network:
    """Construct the Figure-5 network.

    Args:
        buffers: bottleneck router buffer count (10/15/20 in the paper).
        bandwidth: bottleneck bandwidth in bytes/second.
        delay: bottleneck one-way propagation delay in seconds.
        seed: root seed; host timer phases and all traffic draw from
            streams derived from it, so a (seed, parameters) pair fully
            determines the run.
    """
    sim = Simulator()
    topo = Topology(sim)
    rng = RngRegistry(seed)

    router1 = topo.add_router("Router1")
    router2 = topo.add_router("Router2")
    net = Figure5Network(sim=sim, topology=topo, rng=rng)

    for name in HOST_NAMES:
        host = topo.add_host(name)
        net.hosts[name] = host
        near_router = router1 if name.endswith("a") else router2
        topo.add_lan([host, near_router], name=f"lan-{name}")

    net.bottleneck = topo.add_link(router1, router2, bandwidth=bandwidth,
                                   delay=delay, queue_capacity=buffers,
                                   name="bottleneck")
    topo.build_routes()

    for name in HOST_NAMES:
        host_rng = random.Random(rng.stream(f"timer-phase/{name}").random())
        net.protocols[name] = TCPProtocol(net.hosts[name], rng=host_rng)
    return net
