"""Tables 2 and 3: a 1 MB transfer against tcplib background traffic.

Table 2: "the protocol TRAFFIC is running between Host1a and Host1b
... and a 1 MByte transfer is running between Host2a and Host2b", with
the background over Reno and the measured transfer over Reno,
Vegas-1,3 and Vegas-2,4; averages over 57 runs (seeds x 10/15/20
router buffers).

Table 3: the background traffic's own throughput for all four
combinations of background CC x 1 MB-transfer CC.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments import defaults as DFLT
from repro.experiments.figure5 import build_figure5
from repro.experiments.transfers import (
    CCSpec,
    TransferResult,
    resolve_cc,
    start_measured_transfer,
)
from repro.metrics.tables import MetricTable
from repro.trace.tracer import ConnectionTracer


@dataclass
class BackgroundRunResult:
    """One run of the Table-2/3 scenario."""

    transfer: TransferResult
    background_throughput_kbps: float
    background_retransmit_kb: float
    background_conversations: int
    telnet_response_times: List[float]


def run_with_background(transfer_cc: CCSpec, background_cc: CCSpec = "reno",
                        buffers: int = DFLT.DEFAULT_BUFFERS,
                        seed: int = 0,
                        arrival_mean: float = DFLT.TRAFFIC_ARRIVAL_MEAN,
                        transfer_start: float = 2.0,
                        size: int = DFLT.LARGE_TRANSFER,
                        two_way: bool = False,
                        horizon: float = DFLT.TRANSFER_HORIZON,
                        tracer: Optional[ConnectionTracer] = None,
                        ) -> BackgroundRunResult:
    """One measured transfer with TRAFFIC load on the shared bottleneck.

    ``two_way=True`` adds a second TRAFFIC generator in the reverse
    direction (Host3b→Host3a), the §4.3 "two-way background traffic"
    variant.
    """
    from repro.trafficgen import TrafficGenerator, TrafficServer

    net = build_figure5(buffers=buffers, seed=seed)
    bg_factory = resolve_cc(background_cc)
    rng = random.Random(net.rng.stream("traffic").random())
    TrafficServer(net.protocol("Host1b"), rng, bg_factory)
    generator = TrafficGenerator(net.protocol("Host1a"), "Host1b", rng,
                                 bg_factory, arrival_mean=arrival_mean)
    generator.start(0.0)
    reverse_generator = None
    if two_way:
        rng2 = random.Random(net.rng.stream("traffic-reverse").random())
        TrafficServer(net.protocol("Host3a"), rng2, bg_factory)
        reverse_generator = TrafficGenerator(net.protocol("Host3b"),
                                             "Host3a", rng2, bg_factory,
                                             arrival_mean=arrival_mean)
        reverse_generator.start(0.0)

    factory = resolve_cc(transfer_cc)
    holder = start_measured_transfer(net, factory, size,
                                     src="Host2a", dst="Host2b",
                                     start_at=transfer_start, tracer=tracer)
    net.sim.run(until=horizon)
    generator.stop()
    if reverse_generator is not None:
        reverse_generator.stop()
    end = min(horizon, net.sim.now)
    name = transfer_cc if isinstance(transfer_cc, str) else "custom"
    return BackgroundRunResult(
        transfer=TransferResult.from_transfer(holder[0], name),
        background_throughput_kbps=generator.throughput_kbps(0.0, end),
        background_retransmit_kb=generator.total_retransmitted_kb(),
        background_conversations=len(generator.conversations),
        telnet_response_times=generator.telnet_response_times(),
    )


#: Table 2's measured-transfer protocols.
TABLE2_PROTOCOLS: Tuple[str, ...] = ("reno", "vegas-1,3", "vegas-2,4")


def table2(seeds: Iterable[int] = range(5),
           buffers: Iterable[int] = DFLT.TABLE2_BUFFERS,
           background_cc: str = "reno",
           two_way: bool = False,
           protocols: Iterable[str] = TABLE2_PROTOCOLS,
           ) -> Tuple[MetricTable, List[BackgroundRunResult]]:
    """Run the Table-2 grid: protocols x seeds x buffer counts.

    The paper's 57 runs are seeds x {10,15,20} buffers; pass
    ``seeds=range(19)`` for the full count (the default keeps bench
    runtime modest while averaging across both axes).
    """
    protocols = list(protocols)
    table = MetricTable(protocols)
    results: List[BackgroundRunResult] = []
    for proto in protocols:
        for nbuf in buffers:
            for seed in seeds:
                run = run_with_background(proto, background_cc=background_cc,
                                          buffers=nbuf, seed=seed,
                                          two_way=two_way)
                results.append(run)
                table.add_sample("Throughput (KB/s)", proto,
                                 run.transfer.throughput_kbps)
                table.add_sample("Retransmissions (KB)", proto,
                                 run.transfer.retransmitted_kb)
                table.add_sample("Coarse timeouts", proto,
                                 run.transfer.coarse_timeouts)
                table.add_sample("Background throughput (KB/s)", proto,
                                 run.background_throughput_kbps)
    return table, results


def table3(seeds: Iterable[int] = range(5),
           buffers: Iterable[int] = DFLT.TABLE2_BUFFERS,
           ) -> Dict[Tuple[str, str], float]:
    """Table 3: background throughput for each (background, transfer) CC.

    Returns ``{(background_cc, transfer_cc): mean KB/s}`` for the four
    Reno/Vegas combinations.
    """
    out: Dict[Tuple[str, str], float] = {}
    for background_cc in ("reno", "vegas"):
        for transfer_cc in ("reno", "vegas"):
            samples = []
            for nbuf in buffers:
                for seed in seeds:
                    run = run_with_background(transfer_cc,
                                              background_cc=background_cc,
                                              buffers=nbuf, seed=seed)
                    samples.append(run.background_throughput_kbps)
            out[(background_cc, transfer_cc)] = sum(samples) / len(samples)
    return out


#: Paper values for side-by-side printing.
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "Throughput (KB/s)": {"reno": 58.3, "vegas-1,3": 89.4, "vegas-2,4": 91.8},
    "Retransmissions (KB)": {"reno": 55.4, "vegas-1,3": 27.1,
                             "vegas-2,4": 29.4},
    "Coarse timeouts": {"reno": 5.6, "vegas-1,3": 0.9, "vegas-2,4": 0.9},
}

PAPER_TABLE3: Dict[Tuple[str, str], float] = {
    ("reno", "reno"): 68, ("reno", "vegas"): 82,
    ("vegas", "reno"): 84, ("vegas", "vegas"): 85,
}
