"""Figures 1, 6, 7 and 9: traced single-connection runs.

Each function runs the corresponding scenario with tracing enabled and
returns ``(TraceGraph, TransferResult)`` so callers can both inspect
the panels (Figures 2/3/8 elements) and check the headline numbers the
captions quote (Figure 6: Reno 105 KB/s alone; Figure 7: Vegas
169 KB/s alone).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.vegas import VegasCC
from repro.experiments import defaults as DFLT
from repro.experiments.background import run_with_background
from repro.experiments.figure5 import build_figure5
from repro.experiments.transfers import (
    CCSpec,
    TransferResult,
    start_measured_transfer,
)
from repro.trace.graphs import TraceGraph, build_trace_graph
from repro.trace.tracer import ConnectionTracer


def traced_solo_run(cc: CCSpec, name: str,
                    buffers: int = DFLT.DEFAULT_BUFFERS,
                    size: int = DFLT.LARGE_TRANSFER,
                    seed: int = 0,
                    horizon: float = DFLT.TRANSFER_HORIZON,
                    ) -> Tuple[TraceGraph, TransferResult]:
    """One traced transfer with no other traffic (Figures 6 and 7)."""
    net = build_figure5(buffers=buffers, seed=seed)
    tracer = ConnectionTracer(name)
    holder = start_measured_transfer(net, cc, size, src="Host1a",
                                     dst="Host1b", tracer=tracer)
    net.sim.run(until=horizon)
    result = TransferResult.from_transfer(
        holder[0], cc if isinstance(cc, str) else "")
    alpha, beta = _thresholds(holder[0].conn.cc)
    graph = build_trace_graph(tracer, name=name, alpha_buffers=alpha,
                              beta_buffers=beta)
    return graph, result


def figure6(seed: int = 0, buffers: int = DFLT.DEFAULT_BUFFERS,
            ) -> Tuple[TraceGraph, TransferResult]:
    """Figure 6: TCP Reno with no other traffic.

    The paper's caption: throughput 105 KB/s; the trace shows Reno
    periodically overrunning the 10-buffer queue, losing segments, and
    occasionally stalling in a coarse timeout.
    """
    return traced_solo_run("reno", "figure6-reno", buffers=buffers, seed=seed)


def figure7(seed: int = 0, buffers: int = DFLT.DEFAULT_BUFFERS,
            ) -> Tuple[TraceGraph, TransferResult]:
    """Figure 7: TCP Vegas with no other traffic.

    The paper's caption: throughput 169 KB/s; no losses, the window
    stabilises, and the CAM panel shows Actual tracking Expected with
    the α/β band keeping a few extra buffers occupied.
    """
    return traced_solo_run("vegas", "figure7-vegas", buffers=buffers,
                           seed=seed)


def figure1(seed: int = 0, buffers: int = DFLT.DEFAULT_BUFFERS,
            ) -> Tuple[TraceGraph, TransferResult]:
    """Figure 1: Reno trace with tcplib background (the tools demo)."""
    tracer = ConnectionTracer("figure1-reno")
    run = run_with_background("reno", buffers=buffers, seed=seed,
                              tracer=tracer)
    graph = build_trace_graph(tracer, name="figure1-reno")
    return graph, run.transfer


def figure9(seed: int = 0, buffers: int = DFLT.DEFAULT_BUFFERS,
            ) -> Tuple[TraceGraph, TransferResult]:
    """Figure 9: Vegas with tcplib-generated background traffic."""
    tracer = ConnectionTracer("figure9-vegas")
    run = run_with_background("vegas", buffers=buffers, seed=seed,
                              tracer=tracer)
    graph = build_trace_graph(tracer, name="figure9-vegas",
                              alpha_buffers=2.0, beta_buffers=4.0)
    return graph, run.transfer


def _thresholds(cc) -> Tuple[float, float]:
    if isinstance(cc, VegasCC):
        return cc.alpha, cc.beta
    return 0.0, 0.0
