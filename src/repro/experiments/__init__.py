"""Experiment drivers reproducing every table and figure of the paper.

| Paper artifact | Module |
|---|---|
| Figure 5 network | :mod:`repro.experiments.figure5` |
| Figures 1, 6, 7, 9 | :mod:`repro.experiments.traces` |
| Table 1 (+ §4.3 variant) | :mod:`repro.experiments.one_on_one` |
| Tables 2, 3 | :mod:`repro.experiments.background` |
| Tables 4, 5 | :mod:`repro.experiments.internet` |
| §4.3 send-buffer sweep | :mod:`repro.experiments.sendbuf` |
| §4.3 fairness/stability | :mod:`repro.experiments.fairness_exp` |
| §4.3 two-way traffic | :mod:`repro.experiments.twoway` |
| §6 TELNET response time | :mod:`repro.experiments.telnet_response` |
"""

from repro.experiments import defaults
from repro.experiments.figure5 import Figure5Network, build_figure5
from repro.experiments.transfers import (
    TransferResult,
    run_solo_transfer,
    start_measured_transfer,
)

__all__ = [
    "defaults",
    "Figure5Network",
    "build_figure5",
    "TransferResult",
    "run_solo_transfer",
    "start_measured_transfer",
]
