"""§4.3 "Two-way background traffic".

"We modified the experiment in Section 4.2 by adding tcplib traffic
from Host3b to Host3a.  The throughput ratio stayed the same, but the
loss ratio was much better: 0.29.  Reno resent more data and Vegas
remained about the same."

Reverse-direction traffic compresses and batches ACKs, which makes
Reno's ACK clock burstier (more self-induced drops) while Vegas'
fine-grained retransmit and CAM are largely unaffected.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.experiments import defaults as DFLT
from repro.experiments.background import BackgroundRunResult, run_with_background
from repro.metrics.tables import MetricTable


def table_twoway(seeds: Iterable[int] = range(5),
                 buffers: Iterable[int] = DFLT.TABLE2_BUFFERS,
                 protocols: Tuple[str, ...] = ("reno", "vegas"),
                 ) -> Tuple[MetricTable, List[BackgroundRunResult]]:
    """The Table-2 grid with two-way tcplib background traffic."""
    protocols = tuple(protocols)
    table = MetricTable(list(protocols))
    results: List[BackgroundRunResult] = []
    for proto in protocols:
        for nbuf in buffers:
            for seed in seeds:
                run = run_with_background(proto, buffers=nbuf, seed=seed,
                                          two_way=True)
                results.append(run)
                table.add_sample("Throughput (KB/s)", proto,
                                 run.transfer.throughput_kbps)
                table.add_sample("Retransmissions (KB)", proto,
                                 run.transfer.retransmitted_kb)
                table.add_sample("Coarse timeouts", proto,
                                 run.transfer.coarse_timeouts)
    return table, results
