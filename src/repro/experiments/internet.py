"""Tables 4 and 5: the Internet (UA→NIH) experiments, emulated.

The paper measured transfers over a 17-hop Internet path "through
Denver, St. Louis, Chicago, Cleveland, New York and Washington DC"
for seven days, across all levels of congestion.  Per DESIGN.md's
substitution table we emulate that path: a chain of routers joined by
T1-class links, with bursty on/off cross-traffic at several interior
hops whose intensity varies run to run (standing in for time-of-day
variation).  Absolute KB/s differ from the paper's; the comparative
structure — Vegas' advantage, its growth as transfers shrink, Reno's
~20 KB slow-start retransmission floor — is what the benchmarks check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.apps.crosstraffic import CrossTrafficSource
from repro.experiments import defaults as DFLT
from repro.experiments.transfers import CCSpec, TransferResult, resolve_cc
from repro.metrics.tables import MetricTable
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.protocol import TCPProtocol
from repro.trace.tracer import ConnectionTracer
from repro.units import kb, kbps, mbps, ms

#: Number of hops (links) on the UA→NIH path.
HOPS = 17

#: Interior link capacity (bytes/second).
INTERIOR_BANDWIDTH = kbps(200)

#: Interior per-link propagation delay; 17 hops ≈ 38 ms one way.
INTERIOR_DELAY = ms(2.4)

#: Buffering at the congested (hot) routers.  Deliberately small
#: relative to the path BDP (~32 segments): the dominant loss process
#: on the 1994 path was senders overflowing modest bottleneck queues,
#: which is what gives Reno both its slow-start loss floor (Table 5)
#: and its steady-state probing losses.
HOT_BUFFERS = 10

#: Buffering at uncongested routers (never the loss point).
INTERIOR_BUFFERS = 30

#: Links carrying heavy cross traffic (0-based interior link indices).
#: A 1994 long-haul path typically had one dominant bottleneck — a
#: congested regional/backbone interchange — with the rest of the
#: hops adding delay and jitter but little loss.
HOT_LINKS = (8,)

#: Links carrying light cross traffic; remaining links carry none.
COOL_LINKS = (2, 6, 10, 14)

#: Steady cross-traffic load ranges (fraction of link capacity).  The
#: steady component inflates RTT, adds jitter, and sets the available
#: bandwidth each run; it rarely drops packets by itself.
HOT_LOAD_RANGE = (0.15, 0.40)
COOL_LOAD_RANGE = (0.04, 0.10)

#: Loss bursts: occasional short overload episodes ("other people's
#: slow start") on the hot links — brief, mild, and several seconds
#: apart, so they perturb rather than dominate.
BURST_RATE_FACTOR = 1.1
BURST_ON_MEAN = 0.10
BURST_OFF_RANGE = (4.0, 8.0)


@dataclass
class InternetPath:
    """A built UA→NIH emulated path."""

    sim: Simulator
    topology: Topology
    rng: RngRegistry
    ua: TCPProtocol
    nih: TCPProtocol
    cross_sources: List[CrossTrafficSource] = field(default_factory=list)
    load_profile: List[float] = field(default_factory=list)

    def start_cross_traffic(self) -> None:
        for source in self.cross_sources:
            source.start()

    def stop_cross_traffic(self) -> None:
        for source in self.cross_sources:
            source.stop()


def build_internet_path(seed: int = 0, hops: Optional[int] = None,
                        hot_links: Optional[Tuple[int, ...]] = None,
                        ) -> InternetPath:
    """Construct the emulated 17-hop path with per-run load levels.

    ``hops``/``hot_links`` default to the module constants *at call
    time*, so tests and ablations can adjust the module-level knobs.
    """
    if hops is None:
        hops = HOPS
    if hot_links is None:
        hot_links = HOT_LINKS
    sim = Simulator()
    topo = Topology(sim)
    rng = RngRegistry(seed)
    load_rng = rng.stream("load-levels")

    ua_host = topo.add_host("UA")
    nih_host = topo.add_host("NIH")
    routers = [topo.add_router(f"R{i}") for i in range(hops - 1)]

    # Access links: campus Ethernet-class.
    topo.add_link(ua_host, routers[0], bandwidth=mbps(10), delay=ms(0.5),
                  queue_capacity=None, name="ua-access")
    topo.add_link(routers[-1], nih_host, bandwidth=mbps(10), delay=ms(0.5),
                  queue_capacity=None, name="nih-access")
    interior = []
    for i in range(len(routers) - 1):
        buffers = HOT_BUFFERS if i in hot_links else INTERIOR_BUFFERS
        link = topo.add_link(routers[i], routers[i + 1],
                             bandwidth=INTERIOR_BANDWIDTH,
                             delay=INTERIOR_DELAY,
                             queue_capacity=buffers,
                             name=f"hop{i}")
        interior.append(link)

    path = InternetPath(sim=sim, topology=topo, rng=rng, ua=None, nih=None)
    # Cross traffic on the hot and cool links only; the rest are clean.
    for i in range(len(interior)):
        if i in hot_links:
            lo, hi = HOT_LOAD_RANGE
        elif i in COOL_LINKS:
            lo, hi = COOL_LOAD_RANGE
        else:
            path.load_profile.append(0.0)
            continue
        src = topo.add_host(f"X{i}src")
        dst = topo.add_host(f"X{i}dst")
        topo.add_link(src, routers[i], bandwidth=mbps(10), delay=ms(0.2),
                      queue_capacity=None, name=f"x{i}in")
        topo.add_link(routers[i + 1], dst, bandwidth=mbps(10), delay=ms(0.2),
                      queue_capacity=None, name=f"x{i}out")
        load = load_rng.uniform(lo, hi)
        path.load_profile.append(load)
        # Steady component: Poisson aggregate at the drawn load.
        path.cross_sources.append(CrossTrafficSource(
            src, dst.name, rng.stream(f"cross/{i}"),
            burst_rate=INTERIOR_BANDWIDTH * load,
            packet_size=1024, steady=True))
        if i in hot_links:
            # Loss bursts on the hot links only.
            path.cross_sources.append(CrossTrafficSource(
                src, dst.name, rng.stream(f"burst/{i}"),
                burst_rate=INTERIOR_BANDWIDTH * BURST_RATE_FACTOR,
                packet_size=1024, on_mean=BURST_ON_MEAN,
                off_mean=load_rng.uniform(*BURST_OFF_RANGE)))

    topo.build_routes()
    path.ua = TCPProtocol(ua_host, rng=random.Random(
        rng.stream("timer/ua").random()))
    path.nih = TCPProtocol(nih_host, rng=random.Random(
        rng.stream("timer/nih").random()))
    return path


def run_internet_transfer(cc: CCSpec, size: int = kb(1024), seed: int = 0,
                          warmup: float = 3.0,
                          horizon: float = 600.0,
                          tracer: Optional[ConnectionTracer] = None,
                          ) -> TransferResult:
    """One UA→NIH transfer under this seed's cross-traffic conditions."""
    path = build_internet_path(seed=seed)
    factory = resolve_cc(cc)
    BulkSink(path.nih, DFLT.TRANSFER_PORT)
    path.start_cross_traffic()
    holder = [None]

    def _start() -> None:
        holder[0] = BulkTransfer(path.ua, "NIH", DFLT.TRANSFER_PORT, size,
                                 cc=factory(), tracer=tracer)

    path.sim.schedule(warmup, _start)

    # Run until the transfer completes (cross traffic never drains the
    # event heap, so poll in slices).
    t = warmup
    while t < horizon:
        t = min(t + 10.0, horizon)
        path.sim.run(until=t)
        if holder[0] is not None and holder[0].done:
            break
    path.stop_cross_traffic()
    name = cc if isinstance(cc, str) else "custom"
    return TransferResult.from_transfer(holder[0], name)


#: Table 4's protocols.
TABLE4_PROTOCOLS: Tuple[str, ...] = ("reno", "vegas-1,3", "vegas-2,4")


def table4(seeds: Iterable[int] = range(8),
           protocols: Iterable[str] = TABLE4_PROTOCOLS,
           ) -> MetricTable:
    """Table 4: 1 MB UA→NIH transfers per protocol, averaged over runs.

    Each seed is one "run" in the paper's sense — a different
    congestion condition; every protocol faces the same set of seeds,
    mirroring how the paper shuffled transfers within each run.
    """
    protocols = list(protocols)
    table = MetricTable(protocols)
    for proto in protocols:
        for seed in seeds:
            result = run_internet_transfer(proto, size=kb(1024), seed=seed)
            table.add_sample("Throughput (KB/s)", proto,
                             result.throughput_kbps)
            table.add_sample("Retransmissions (KB)", proto,
                             result.retransmitted_kb)
            table.add_sample("Coarse timeouts", proto,
                             result.coarse_timeouts)
    return table


def table5(seeds: Iterable[int] = range(8),
           sizes: Iterable[int] = DFLT.INTERNET_SIZES,
           protocols: Tuple[str, str] = ("reno", "vegas-1,3"),
           ) -> Dict[int, MetricTable]:
    """Table 5: transfer-size sweep for Reno and Vegas-1,3.

    Returns one MetricTable per size (keyed by size in bytes).
    """
    out: Dict[int, MetricTable] = {}
    for size in sizes:
        table = MetricTable(list(protocols))
        for proto in protocols:
            for seed in seeds:
                result = run_internet_transfer(proto, size=size, seed=seed)
                table.add_sample("Throughput (KB/s)", proto,
                                 result.throughput_kbps)
                table.add_sample("Retransmissions (KB)", proto,
                                 result.retransmitted_kb)
                table.add_sample("Coarse timeouts", proto,
                                 result.coarse_timeouts)
        out[size] = table
    return out


#: Paper values for side-by-side printing.
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "Throughput (KB/s)": {"reno": 53.0, "vegas-1,3": 72.5,
                          "vegas-2,4": 75.3},
    "Retransmissions (KB)": {"reno": 47.8, "vegas-1,3": 24.5,
                             "vegas-2,4": 29.3},
    "Coarse timeouts": {"reno": 3.3, "vegas-1,3": 0.8, "vegas-2,4": 0.9},
}

PAPER_TABLE5: Dict[int, Dict[str, Dict[str, float]]] = {
    kb(1024): {"Throughput (KB/s)": {"reno": 53.0, "vegas-1,3": 72.5},
               "Retransmissions (KB)": {"reno": 47.8, "vegas-1,3": 24.5},
               "Coarse timeouts": {"reno": 3.3, "vegas-1,3": 0.8}},
    kb(512): {"Throughput (KB/s)": {"reno": 52.0, "vegas-1,3": 72.0},
              "Retransmissions (KB)": {"reno": 27.9, "vegas-1,3": 10.5},
              "Coarse timeouts": {"reno": 1.7, "vegas-1,3": 0.2}},
    kb(128): {"Throughput (KB/s)": {"reno": 31.1, "vegas-1,3": 53.1},
              "Retransmissions (KB)": {"reno": 22.9, "vegas-1,3": 4.0},
              "Coarse timeouts": {"reno": 1.1, "vegas-1,3": 0.2}},
}
