"""§4.3 "Different TCP send-buffer sizes".

"For this experiment, we tried send-buffer sizes between 50KB and 5KB.
Vegas' throughput and losses stayed unchanged between 50KB and 20KB;
from that point on, as the buffer decreased, so did the throughput
... Reno's throughput initially *increased* as the buffers got
smaller, and then it decreased.  It always remained under the
throughput measured for Vegas."

A small send buffer caps the window and therefore stops Reno from
overrunning the bottleneck queue — an external fix for the exact
problem Vegas solves internally.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.experiments import defaults as DFLT
from repro.experiments.transfers import CCSpec, TransferResult, run_solo_transfer
from repro.units import kb

#: The paper's sweep range.
DEFAULT_SIZES_KB: Tuple[int, ...] = (5, 10, 15, 20, 30, 40, 50)


def sendbuf_sweep(cc: CCSpec, sizes_kb: Iterable[int] = DEFAULT_SIZES_KB,
                  buffers: int = DFLT.DEFAULT_BUFFERS,
                  seeds: Iterable[int] = (0,),
                  ) -> Dict[int, TransferResult]:
    """Run a 1 MB solo transfer per send-buffer size; mean over seeds.

    Returns ``{sndbuf_kb: averaged TransferResult}`` (the averaged
    result reuses the TransferResult record with mean fields).
    """
    out: Dict[int, TransferResult] = {}
    for size_kb in sizes_kb:
        runs: List[TransferResult] = []
        for seed in seeds:
            runs.append(run_solo_transfer(cc, buffers=buffers, seed=seed,
                                          sndbuf=kb(size_kb)))
        n = len(runs)
        out[size_kb] = TransferResult(
            cc_name=runs[0].cc_name,
            size_bytes=runs[0].size_bytes,
            done=all(r.done for r in runs),
            throughput_kbps=sum(r.throughput_kbps for r in runs) / n,
            retransmitted_kb=sum(r.retransmitted_kb for r in runs) / n,
            coarse_timeouts=round(sum(r.coarse_timeouts for r in runs) / n),
            fast_retransmits=round(sum(r.fast_retransmits for r in runs) / n),
            fine_retransmits=round(sum(r.fine_retransmits for r in runs) / n),
            duration=None,
        )
    return out
