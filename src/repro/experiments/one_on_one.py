"""Table 1: one-on-one transfers.

"We start a 1 MB transfer, and then after a variable delay, start a
300 KB transfer. ... The values in the table are averages from 12
runs, using 15 and 20 buffers in the routers, and with the delay
before starting the smaller transfer ranging between 0 and 2.5
seconds."  Column ``X/Y`` means a 300 KB transfer over X contained in
a 1 MB transfer over Y.

Also covers the §4.3 variant "one-on-one tests with traffic in the
background".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.experiments import defaults as DFLT
from repro.experiments.figure5 import build_figure5
from repro.experiments.transfers import (
    CCSpec,
    TransferResult,
    start_measured_transfer,
)
from repro.metrics.tables import MetricTable

#: The paper's four column combinations, named small/large.
COMBOS: Tuple[Tuple[str, str], ...] = (
    ("reno", "reno"),
    ("reno", "vegas"),
    ("vegas", "reno"),
    ("vegas", "vegas"),
)


@dataclass
class OneOnOneResult:
    """One run: the pair of transfer results."""

    small: TransferResult
    large: TransferResult
    small_cc: str
    large_cc: str

    @property
    def combo(self) -> str:
        return f"{self.small_cc}/{self.large_cc}"


def run_one_on_one(small_cc: CCSpec, large_cc: CCSpec,
                   delay: float, buffers: int, seed: int = 0,
                   with_background: bool = False,
                   arrival_mean: float = DFLT.TRAFFIC_ARRIVAL_MEAN,
                   horizon: float = DFLT.TRANSFER_HORIZON) -> OneOnOneResult:
    """One Table-1 run: 1 MB on Host1, 300 KB on Host2 after *delay*.

    With ``with_background=True`` a Reno TRAFFIC load runs on Host3
    (the §4.3 variant).
    """
    net = build_figure5(buffers=buffers, seed=seed)
    large = start_measured_transfer(net, large_cc, DFLT.LARGE_TRANSFER,
                                    src="Host1a", dst="Host1b",
                                    start_at=0.0)
    small = start_measured_transfer(net, small_cc, DFLT.SMALL_TRANSFER,
                                    src="Host2a", dst="Host2b",
                                    start_at=delay)
    generator = None
    if with_background:
        from repro.core.reno import RenoCC
        from repro.trafficgen import TrafficGenerator, TrafficServer

        import random
        rng = random.Random(net.rng.stream("traffic").random())
        TrafficServer(net.protocol("Host3b"), rng, RenoCC)
        generator = TrafficGenerator(net.protocol("Host3a"), "Host3b", rng,
                                     RenoCC, arrival_mean=arrival_mean)
        generator.start(0.0)
    net.sim.run(until=horizon)
    if generator is not None:
        generator.stop()
    small_name = small_cc if isinstance(small_cc, str) else "custom"
    large_name = large_cc if isinstance(large_cc, str) else "custom"
    return OneOnOneResult(
        small=TransferResult.from_transfer(small[0], small_name),
        large=TransferResult.from_transfer(large[0], large_name),
        small_cc=small_name, large_cc=large_name,
    )


def table1(buffers: Iterable[int] = DFLT.TABLE1_BUFFERS,
           delays: Iterable[float] = DFLT.TABLE1_DELAYS,
           seed: int = 0,
           with_background: bool = False,
           combos: Iterable[Tuple[str, str]] = COMBOS,
           ) -> Tuple[MetricTable, List[OneOnOneResult]]:
    """Run the full Table-1 grid and aggregate it the paper's way.

    Returns the metric table (rows: small/large throughput and
    retransmit KB) plus all individual run results.
    """
    columns = [f"{small}/{large}" for small, large in combos]
    table = MetricTable(columns)
    results: List[OneOnOneResult] = []
    for small_cc, large_cc in combos:
        column = f"{small_cc}/{large_cc}"
        run_index = 0
        for nbuf in buffers:
            for delay in delays:
                result = run_one_on_one(small_cc, large_cc, delay, nbuf,
                                        seed=seed + run_index,
                                        with_background=with_background)
                results.append(result)
                table.add_sample("Small throughput (KB/s)", column,
                                 result.small.throughput_kbps)
                table.add_sample("Large throughput (KB/s)", column,
                                 result.large.throughput_kbps)
                table.add_sample("Small retransmits (KB)", column,
                                 result.small.retransmitted_kb)
                table.add_sample("Large retransmits (KB)", column,
                                 result.large.retransmitted_kb)
                table.add_sample("Combined retransmits (KB)", column,
                                 result.small.retransmitted_kb
                                 + result.large.retransmitted_kb)
                run_index += 1
    return table, results


#: The paper's Table 1 numbers, for side-by-side printing.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "Small throughput (KB/s)": {
        "reno/reno": 60, "reno/vegas": 61, "vegas/reno": 66,
        "vegas/vegas": 74},
    "Large throughput (KB/s)": {
        "reno/reno": 109, "reno/vegas": 123, "vegas/reno": 119,
        "vegas/vegas": 131},
    "Small retransmits (KB)": {
        "reno/reno": 30, "reno/vegas": 43, "vegas/reno": 1.5,
        "vegas/vegas": 0.3},
    "Large retransmits (KB)": {
        "reno/reno": 22, "reno/vegas": 1.8, "vegas/reno": 18,
        "vegas/vegas": 0.1},
}
