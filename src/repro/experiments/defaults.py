"""Canonical experiment parameters.

The Figure-5 simulation network: hosts 1a/2a/3a on 10 Mb/s access
Ethernets into Router1, a 200 KB/s 50 ms bottleneck link to Router2,
and hosts 1b/2b/3b on the far side.  The base RTT is therefore
~100 ms, giving a bandwidth-delay product of ~20 segments; the paper
runs the bottleneck router with 10, 15 or 20 buffers, i.e. one half to
one BDP of queueing — the regime where Reno's probing is costly and
Vegas' α/β band fits comfortably.

All experiment modules import these so that a single edit rescales the
whole evaluation.
"""

from __future__ import annotations

from repro.units import kb, kbps, mb, ms

#: Bottleneck link bandwidth (bytes/second): 200 KB/s.
BOTTLENECK_BANDWIDTH = kbps(200)

#: Bottleneck one-way propagation delay: 50 ms.
BOTTLENECK_DELAY = ms(50)

#: Router buffer counts used across the paper's experiments.
DEFAULT_BUFFERS = 10
TABLE1_BUFFERS = (15, 20)
TABLE2_BUFFERS = (10, 15, 20)

#: Transfer sizes.
LARGE_TRANSFER = mb(1)
SMALL_TRANSFER = kb(300)
INTERNET_SIZES = (kb(1024), kb(512), kb(128))

#: The paper's socket buffer (50 KB) — swept in §4.3.
SOCKBUF = 50 * 1024

#: TRAFFIC generator load producing Table-2-like contention on the
#: 200 KB/s bottleneck (mean seconds between conversation starts).
TRAFFIC_ARRIVAL_MEAN = 0.5

#: Start delays for the Table-1 small transfer ("ranging between 0 and
#: 2.5 seconds"); combined with TABLE1_BUFFERS this gives the paper's
#: 12 runs.
TABLE1_DELAYS = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5)

#: Ports used by measured transfers (TRAFFIC owns the well-known ones).
TRANSFER_PORT = 7001

#: Simulation horizon for a single measured transfer (seconds).
TRANSFER_HORIZON = 300.0
