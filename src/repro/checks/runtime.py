"""Process-wide activation of the runtime invariant checker.

The checker is wired into components at *construction* time: while a
checker is active, every newly built simulator, queue, channel and TCP
connection registers itself with it and keeps a direct reference, so
the hot paths pay a single ``is not None`` test when checking is off.

This module deliberately imports nothing from the rest of the package
(beyond the standard library) so that ``sim.engine``, ``net.queue``,
``net.link`` and ``tcp.connection`` can consult it without creating
import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

_active = None


def active():
    """The currently active checker, or ``None``."""
    return _active


def activate(checker) -> None:
    """Install *checker* as the process-wide active checker."""
    global _active
    if _active is not None:
        raise RuntimeError("an invariant checker is already active")
    _active = checker


def deactivate() -> None:
    """Remove the active checker (idempotent)."""
    global _active
    _active = None


@contextmanager
def checking(checker: Optional[object] = None, mode: str = "raise"):
    """Context manager: run a block with an active checker.

    ::

        with checking() as chk:
            run_experiment()
        assert not chk.violations

    A fresh :class:`~repro.checks.checker.InvariantChecker` is built
    unless one is passed in.
    """
    if checker is None:
        from repro.checks.checker import InvariantChecker

        checker = InvariantChecker(mode=mode)
    activate(checker)
    try:
        yield checker
    finally:
        deactivate()
