"""Runtime invariant checking (see TESTING.md).

Activate a checker for a block of code with::

    from repro.checks import checking

    with checking() as chk:
        run_experiment()          # components self-register
    assert not chk.violations

or through the harness/CLI: ``run_cell(cell, checks="raise")`` /
``python -m repro.cli run-all --checks``.
"""

from repro.checks.checker import InvariantChecker
from repro.checks.runtime import activate, active, checking, deactivate

__all__ = [
    "InvariantChecker",
    "activate",
    "active",
    "checking",
    "deactivate",
]
