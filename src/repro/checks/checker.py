"""Runtime invariant checker.

The checker audits a running simulation from the outside: components
register themselves at construction (see :mod:`repro.checks.runtime`)
and call cheap notification hooks at the few points where protocol
invariants are decidable.  Structural conservation laws — queue and
link packet accounting, buffer occupancy — are re-audited periodically
from the engine's event loop and once more when a run ends.

Checked invariants:

* **Event clock monotonicity** — the simulated clock never moves
  backwards between events.
* **Queue conservation** — for every queue, ``enqueued == dequeued +
  len(queue)``, occupancy never exceeds capacity, and drop counters
  never go negative.
* **Link conservation** — for every channel, every packet dequeued
  from the egress queue is either still in flight, delivered, or
  absorbed by an injected fault; when the event heap drains, nothing
  may remain in flight.
* **Sequence-space sanity** — ``snd_una <= snd_nxt <= snd_max``,
  cumulative ACKs never regress or overtake ``snd_max``, senders never
  transmit unqueued data or data below ``snd_una``, and a receiver's
  ``rcv_nxt`` never passes what its peer actually sent.
* **Congestion-window bounds** — windows stay positive and bounded;
  Vegas grows by at most one segment per adjustment and its CAM
  decisions are consistent with the α/β thresholds; Reno-family
  controllers never halve ``ssthresh`` twice within one recovery
  epoch.
* **Buffer occupancy** — send buffers respect their capacity and
  reassembly queues never hold more than the advertised window.

In ``raise`` mode the first violation raises
:class:`~repro.errors.InvariantViolation`; in ``collect`` mode all
violations are recorded on :attr:`InvariantChecker.violations` and the
simulation continues.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import InvariantViolation

#: How many processed events between two structural audits.  Audits
#: piggyback on the engine's event hook — they schedule nothing — so
#: enabling checks never changes ``events_processed``.
DEFAULT_AUDIT_INTERVAL = 256

#: Structural slack above MAX_CWND: recovery inflation legitimately
#: overshoots the cap by a few segments before deflation.
_CWND_SLACK_SEGMENTS = 16


class InvariantChecker:
    """Audits one simulation run; see the module docstring.

    Args:
        mode: ``"raise"`` (fail fast, the default) or ``"collect"``
            (record violations and keep running).
        audit_interval: events between two structural audits.
    """

    def __init__(self, mode: str = "raise",
                 audit_interval: int = DEFAULT_AUDIT_INTERVAL):
        if mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {mode!r}")
        self.mode = mode
        self.audit_interval = audit_interval
        self.violations: List[InvariantViolation] = []
        self.audits = 0
        self._sims: List[object] = []
        self._queues: List[object] = []
        self._channels: List[object] = []
        self._lans: List[object] = []
        self._connections: List[object] = []
        self._events_seen = 0
        self._last_time: Dict[int, float] = {}
        # Highest end-sequence each flow has ever put on the wire,
        # keyed by the sender's FlowId tuple; the peer's receive side
        # is checked against the reversed key.
        self._max_sent: Dict[Tuple, int] = {}
        self._last_una: Dict[int, int] = {}
        self._last_rcv_nxt: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Registration (called from component constructors)
    # ------------------------------------------------------------------
    def register_simulator(self, sim) -> None:
        self._sims.append(sim)

    def register_queue(self, queue) -> None:
        self._queues.append(queue)

    def register_channel(self, channel) -> None:
        self._channels.append(channel)

    def register_lan(self, lan) -> None:
        self._lans.append(lan)

    def register_connection(self, conn) -> None:
        self._connections.append(conn)

    # ------------------------------------------------------------------
    # Violation plumbing
    # ------------------------------------------------------------------
    def _fail(self, invariant: str, sim_time: float, subject: str = "",
              flow=None, detail: str = "") -> None:
        violation = InvariantViolation(invariant, sim_time, subject=subject,
                                       flow=flow, detail=detail)
        self.violations.append(violation)
        if self.mode == "raise":
            raise violation

    def report(self) -> List[Dict[str, object]]:
        """Violations as JSON-serialisable records (for CI artifacts)."""
        return [
            {
                "invariant": v.invariant,
                "sim_time": v.sim_time,
                "subject": v.subject,
                "flow": str(v.flow) if v.flow is not None else None,
                "detail": v.detail,
            }
            for v in self.violations
        ]

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_event(self, sim) -> None:
        """Called by the engine before dispatching each event."""
        last = self._last_time.get(id(sim))
        if last is not None and sim.now < last:
            self._fail("clock-monotonicity", sim.now, subject="simulator",
                       detail=f"clock moved from {last:.6f} to {sim.now:.6f}")
        self._last_time[id(sim)] = sim.now
        self._events_seen += 1
        if self._events_seen % self.audit_interval == 0:
            self.audit(sim.now)

    def on_run_end(self, sim) -> None:
        """Called by the engine when ``run()`` returns."""
        self.audit(sim.now)
        if sim.pending_events == 0:
            self._audit_drained(sim.now)

    # ------------------------------------------------------------------
    # TCP sequence-space hooks (called from the connection)
    # ------------------------------------------------------------------
    def note_sent(self, conn, seq: int, end_seq: int,
                  is_data: bool = True) -> None:
        """A segment occupying ``[seq, end_seq)`` left *conn*."""
        now = conn.now
        if seq < conn.snd_una:
            self._fail("send-below-una", now, flow=conn.flow,
                       detail=f"sent seq {seq} below snd_una {conn.snd_una}")
        if is_data and end_seq > conn.sendbuf.queued_end:
            self._fail("send-unqueued-data", now, flow=conn.flow,
                       detail=f"sent through {end_seq} but only "
                              f"{conn.sendbuf.queued_end} queued")
        key = tuple(conn.flow)
        if end_seq > self._max_sent.get(key, 0):
            self._max_sent[key] = end_seq
        self._check_seq(conn, now)

    def on_ack(self, conn, ack: int) -> None:
        """A cumulative ACK advanced *conn*'s ``snd_una`` to *ack*."""
        now = conn.now
        prev = self._last_una.get(id(conn))
        if prev is not None and conn.snd_una < prev:
            self._fail("ack-regression", now, flow=conn.flow,
                       detail=f"snd_una regressed {prev} -> {conn.snd_una}")
        self._last_una[id(conn)] = conn.snd_una
        if ack > conn.snd_max:
            self._fail("ack-beyond-snd-max", now, flow=conn.flow,
                       detail=f"ack {ack} > snd_max {conn.snd_max}")
        self._check_seq(conn, now)

    def on_segment_processed(self, conn) -> None:
        """*conn* finished processing one inbound segment."""
        now = conn.now
        rcv_nxt = conn.recv.rcv_nxt
        prev = self._last_rcv_nxt.get(id(conn))
        if prev is not None and rcv_nxt < prev:
            self._fail("rcv-nxt-regression", now, flow=conn.flow,
                       detail=f"rcv_nxt regressed {prev} -> {rcv_nxt}")
        self._last_rcv_nxt[id(conn)] = rcv_nxt
        peer_sent = self._max_sent.get(tuple(conn.flow.reversed()))
        if peer_sent is not None and rcv_nxt > peer_sent:
            self._fail("delivery-of-unsent-data", now, flow=conn.flow,
                       detail=f"rcv_nxt {rcv_nxt} beyond peer's highest "
                              f"sent sequence {peer_sent}")
        self._check_seq(conn, now)

    def _check_seq(self, conn, now: float) -> None:
        if not (conn.snd_una <= conn.snd_nxt <= conn.snd_max):
            self._fail("sequence-space", now, flow=conn.flow,
                       detail=f"snd_una={conn.snd_una} snd_nxt={conn.snd_nxt} "
                              f"snd_max={conn.snd_max}")

    # ------------------------------------------------------------------
    # Congestion-window hooks (called from CongestionControl)
    # ------------------------------------------------------------------
    def on_cwnd(self, cc, old: int, new: int, now: float) -> None:
        from repro.core.vegas import VegasCC
        from repro.tcp import constants as C

        flow = getattr(cc.conn, "flow", None)
        mss = cc.conn.mss
        if new <= 0:
            self._fail("cwnd-positive", now, subject=cc.name, flow=flow,
                       detail=f"cwnd set to {new}")
        if new > C.MAX_CWND + _CWND_SLACK_SEGMENTS * mss:
            self._fail("cwnd-bounded", now, subject=cc.name, flow=flow,
                       detail=f"cwnd {new} above MAX_CWND {C.MAX_CWND}")
        if (isinstance(cc, VegasCC) and new > old and new - old > mss
                and not getattr(cc, "in_recovery", False)):
            # Vegas only ever grows additively: one segment per ACK in
            # slow start, one segment per RTT from the CAM decision.
            # Recovery is exempt — Vegas keeps Reno's fast-recovery
            # inflation (cwnd = ssthresh + 3 MSS on entry).
            self._fail("vegas-additive-growth", now, subject=cc.name,
                       flow=flow,
                       detail=f"cwnd jumped {old} -> {new} (> 1 MSS)")

    def on_ssthresh(self, cc, old: int, new: int, now: float) -> None:
        from repro.core.reno import RenoCC

        flow = getattr(cc.conn, "flow", None)
        if new <= 0:
            self._fail("ssthresh-positive", now, subject=cc.name, flow=flow,
                       detail=f"ssthresh set to {new}")
        if (isinstance(cc, RenoCC) and new < old
                and getattr(cc, "in_recovery", False)):
            # A Reno-family controller halves when *entering* recovery
            # (or on a timeout, which terminates recovery first); a
            # decrease mid-recovery means two cuts in one loss epoch.
            self._fail("reno-single-halving", now, subject=cc.name, flow=flow,
                       detail=f"ssthresh cut {old} -> {new} while already "
                              "in recovery")

    def on_cam_decision(self, cc, diff_buffers: float, action: int,
                        now: float) -> None:
        """Vegas made a linear-mode CAM decision (+1/0/-1 segments)."""
        flow = getattr(cc.conn, "flow", None)
        if diff_buffers < 0:
            self._fail("vegas-diff-nonnegative", now, subject=cc.name,
                       flow=flow, detail=f"Diff = {diff_buffers:.3f}")
        if action == 1 and not diff_buffers < cc.alpha:
            self._fail("vegas-cam-alpha", now, subject=cc.name, flow=flow,
                       detail=f"increase with Diff {diff_buffers:.3f} "
                              f">= alpha {cc.alpha}")
        elif action == -1 and not diff_buffers > cc.beta:
            self._fail("vegas-cam-beta", now, subject=cc.name, flow=flow,
                       detail=f"decrease with Diff {diff_buffers:.3f} "
                              f"<= beta {cc.beta}")
        elif action == 0 and not (cc.alpha <= diff_buffers <= cc.beta):
            self._fail("vegas-cam-hold", now, subject=cc.name, flow=flow,
                       detail=f"hold with Diff {diff_buffers:.3f} outside "
                              f"[{cc.alpha}, {cc.beta}]")

    # ------------------------------------------------------------------
    # Structural audits
    # ------------------------------------------------------------------
    def audit(self, now: float) -> None:
        """Re-check every registered component's conservation laws."""
        self.audits += 1
        for queue in self._queues:
            self._audit_queue(queue, now)
        for channel in self._channels:
            self._audit_channel(channel, now)
        for lan in self._lans:
            self._audit_lan(lan, now)
        for conn in self._connections:
            self._audit_connection(conn, now)

    def _audit_queue(self, queue, now: float) -> None:
        depth = len(queue)
        if queue.capacity is not None and depth > queue.capacity:
            self._fail("queue-occupancy", now, subject=queue.name,
                       detail=f"depth {depth} > capacity {queue.capacity}")
        if queue.enqueued != queue.dequeued + depth:
            self._fail("queue-conservation", now, subject=queue.name,
                       detail=f"enqueued {queue.enqueued} != dequeued "
                              f"{queue.dequeued} + depth {depth}")
        if queue.dropped < 0 or queue.dropped != len(queue.drops):
            self._fail("queue-drop-accounting", now, subject=queue.name,
                       detail=f"dropped {queue.dropped} vs "
                              f"{len(queue.drops)} recorded drops")

    def _audit_channel(self, channel, now: float) -> None:
        in_transit = channel.in_transit
        if in_transit < 0:
            self._fail("link-conservation", now, subject=channel.name,
                       detail=f"in_transit went negative ({in_transit})")
        absorbed = extra = 0
        if channel.faults is not None:
            absorbed = channel.faults.absorbed
            extra = channel.faults.extra
        # Stochastic channel loss (VariableRateChannel) destroys
        # packets at their delivery instant, exactly like an absorbed
        # fault.
        absorbed += getattr(channel, "stochastic_losses", 0)
        accounted = in_transit + channel.packets_delivered - extra + absorbed
        if channel.queue.dequeued != accounted:
            self._fail(
                "link-conservation", now, subject=channel.name,
                detail=f"dequeued {channel.queue.dequeued} != in_transit "
                       f"{in_transit} + delivered {channel.packets_delivered}"
                       f" - duplicated {extra} + absorbed {absorbed}")

    def _audit_lan(self, lan, now: float) -> None:
        if lan.in_transit < 0:
            self._fail("lan-conservation", now, subject=lan.name,
                       detail=f"in_transit went negative ({lan.in_transit})")
        accounted = lan.in_transit + lan.packets_delivered
        # Idle-medium sends bypass the attachment queue entirely, so
        # conservation is over dequeued + bypassed transmissions.
        entered = lan.queue.dequeued + lan.bypassed
        if entered != accounted:
            self._fail("lan-conservation", now, subject=lan.name,
                       detail=f"dequeued {lan.queue.dequeued} + bypassed "
                              f"{lan.bypassed} != in_transit "
                              f"{lan.in_transit} + delivered "
                              f"{lan.packets_delivered}")

    def _audit_connection(self, conn, now: float) -> None:
        self._check_seq(conn, now)
        sendbuf = conn.sendbuf
        if not 0 <= sendbuf.in_buffer <= sendbuf.capacity:
            self._fail("sendbuf-occupancy", now, flow=conn.flow,
                       detail=f"{sendbuf.in_buffer} bytes held, capacity "
                              f"{sendbuf.capacity}")
        buffered = conn.recv.reasm.buffered_bytes
        if buffered > conn.recv.rcvbuf:
            self._fail("reassembly-occupancy", now, flow=conn.flow,
                       detail=f"{buffered} out-of-order bytes > advertised "
                              f"window {conn.recv.rcvbuf}")
        if conn.cc.cwnd <= 0:
            self._fail("cwnd-positive", now, subject=conn.cc.name,
                       flow=conn.flow, detail=f"cwnd is {conn.cc.cwnd}")

    def _audit_drained(self, now: float) -> None:
        """Final accounting once the event heap is fully drained."""
        for channel in self._channels:
            if channel.in_transit != 0:
                self._fail("packets-vanished", now, subject=channel.name,
                           detail=f"{channel.in_transit} packet(s) still "
                                  "marked in flight with no pending events")
            if channel.faults is not None and channel.faults.held:
                self._fail("packets-vanished", now, subject=channel.name,
                           detail=f"{channel.faults.held} packet(s) held by "
                                  "the fault injector with no pending events")
        for lan in self._lans:
            if lan.in_transit != 0:
                self._fail("packets-vanished", now, subject=lan.name,
                           detail=f"{lan.in_transit} packet(s) still marked "
                                  "in flight with no pending events")
