#!/usr/bin/env python3
"""A measured transfer competing with tcplib-style background traffic.

Reproduces the paper's §4.2 scenario in miniature: the TRAFFIC
protocol (TELNET/FTP/SMTP/NNTP conversations with exponential
interarrivals) loads the Figure-5 bottleneck between Host1a and
Host1b, while a 1 MB transfer runs between Host2a and Host2b — once
with Reno, once with Vegas-1,3 and once with Vegas-2,4.

Run:  python examples/background_traffic.py
"""

from repro.experiments.background import run_with_background


def main():
    print("1 MB transfer vs tcplib background Reno traffic "
          "(Figure-5 network, 10 buffers)\n")
    print(f"{'protocol':<12} {'KB/s':>7} {'retx KB':>8} {'timeouts':>9} "
          f"{'bg convs':>9} {'bg KB/s':>8}")
    baseline = None
    for proto in ("reno", "vegas-1,3", "vegas-2,4"):
        run = run_with_background(proto, seed=1)
        transfer = run.transfer
        print(f"{proto:<12} {transfer.throughput_kbps:7.1f} "
              f"{transfer.retransmitted_kb:8.1f} "
              f"{transfer.coarse_timeouts:9d} "
              f"{run.background_conversations:9d} "
              f"{run.background_throughput_kbps:8.1f}")
        if proto == "reno":
            baseline = transfer
    print("\nPaper's Table 2 (57-run averages): Reno 58.3 KB/s / 55.4 KB "
          "retransmitted / 5.6 timeouts;")
    print("Vegas-1,3 89.4 KB/s / 27.1 KB / 0.9; Vegas-2,4 91.8 KB/s / "
          "29.4 KB / 0.9.")


if __name__ == "__main__":
    main()
