#!/usr/bin/env python3
"""Regenerate the paper's Figures 6 and 7 as ASCII trace graphs.

Runs the two canonical solo transfers — Reno alone and Vegas alone on
the Figure-5 network — and renders the windows panel, the sending-rate
panel, and (for Vegas) the Figure-8 CAM panel as text.  Reno's graph
shows the sawtooth and loss marks; Vegas' shows a window that finds
the bandwidth and stays there without losses.

Run:  python examples/trace_comparison.py
"""

from repro.experiments.traces import figure6, figure7
from repro.trace.ascii_plot import (
    render_cam_panel,
    render_rate_panel,
    render_windows_panel,
)


def show(graph, result, caption):
    print("=" * 80)
    print(caption)
    print(f"throughput {result.throughput_kbps:.1f} KB/s, "
          f"{result.retransmitted_kb:.1f} KB retransmitted, "
          f"{result.coarse_timeouts} coarse timeouts, "
          f"{len(graph.common.loss_lines)} segments presumed lost")
    print("=" * 80)
    print(render_windows_panel(graph))
    print("   (#: congestion window, .: bytes in transit, "
          "O: coarse timeout, |: loss)")
    print()
    print(render_rate_panel(graph))
    if graph.cam is not None:
        print()
        print(render_cam_panel(graph))
        print(f"   (alpha={graph.cam.alpha:.0f}, beta={graph.cam.beta:.0f} "
              "buffers; once-per-RTT decisions)")
    print()


def main():
    reno_graph, reno_result = figure6()
    show(reno_graph, reno_result,
         "Figure 6: TCP Reno with no other traffic (paper: 105 KB/s)")
    vegas_graph, vegas_result = figure7()
    show(vegas_graph, vegas_result,
         "Figure 7: TCP Vegas with no other traffic (paper: 169 KB/s)")


if __name__ == "__main__":
    main()
