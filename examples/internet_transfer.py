#!/usr/bin/env python3
"""Transfers over the emulated 17-hop Internet path (paper §5).

The paper measured UA→NIH transfers for a week; this example runs the
emulated equivalent — a chain of routers with one congested
interchange whose cross-traffic intensity varies run to run — for a
few "hours" (seeds) and prints the Table-4/5 style comparison.

Run:  python examples/internet_transfer.py
"""

from repro.experiments.internet import build_internet_path, run_internet_transfer
from repro.units import kb


def main():
    path = build_internet_path(seed=0)
    hot = [f"hop{i}={load:.2f}" for i, load in enumerate(path.load_profile)
           if load > 0.12]
    print("Emulated UA->NIH path: 17 hops, congested interchange(s): "
          + ", ".join(hot))
    print()

    for size_kb in (1024, 512, 128):
        print(f"--- {size_kb} KB transfers (3 congestion conditions) ---")
        for proto in ("reno", "vegas-1,3"):
            tput = retx = timeouts = 0.0
            runs = 3
            for seed in range(runs):
                result = run_internet_transfer(proto, size=kb(size_kb),
                                               seed=seed)
                tput += result.throughput_kbps
                retx += result.retransmitted_kb
                timeouts += result.coarse_timeouts
            print(f"  {proto:<10} {tput / runs:6.1f} KB/s  "
                  f"{retx / runs:6.1f} KB retx  "
                  f"{timeouts / runs:.1f} timeouts")
        print()
    print("Paper's Table 5: Reno 53/52/31 KB/s and 47.8/27.9/22.9 KB retx")
    print("for 1024/512/128 KB; Vegas-1,3 72.5/72/53.1 KB/s and "
          "24.5/10.5/4.0 KB retx.")
    print("Note how Reno's losses flatten toward its ~20 KB slow-start "
          "floor while Vegas' scale down.")


if __name__ == "__main__":
    main()
