#!/usr/bin/env python3
"""Fairness of many competing connections (paper §4.3).

Sixteen simultaneous transfers share a 200 KB/s bottleneck with only
20 router buffers — the paper's stress configuration.  Prints Jain's
fairness index and per-connection throughputs for Reno and Vegas,
with equal and 2:1 propagation delays.

Run:  python examples/fairness_demo.py
"""

from repro.experiments.fairness_exp import run_competing_connections
from repro.units import kb


def main():
    for mixed in (False, True):
        label = "2:1 propagation delays" if mixed else "equal delays"
        print(f"=== 16 connections, 512 KB each, 20 buffers, {label} ===")
        for cc in ("reno", "vegas"):
            result = run_competing_connections(cc, 16,
                                               transfer_bytes=kb(512),
                                               mixed_delays=mixed,
                                               buffers=20, seed=0)
            tputs = " ".join(f"{t:5.1f}" for t in result.throughputs_kbps)
            print(f"{cc:>6}: Jain index {result.fairness_index:.3f}, "
                  f"{result.coarse_timeouts} timeouts, "
                  f"{result.total_retransmit_kb:.0f} KB retransmitted")
            print(f"        per-connection KB/s: {tputs}")
        print()
    print("Paper: 'Vegas was more fair than Reno in all experiments' with")
    print("16 connections, and 'no stability problems ... even though")
    print("there were only 20 buffers at the router'.")


if __name__ == "__main__":
    main()
