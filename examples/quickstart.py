#!/usr/bin/env python3
"""Quickstart: one TCP Vegas transfer over a two-router bottleneck.

Builds the smallest interesting network — two hosts around a 200 KB/s
bottleneck with 10 router buffers — runs a 1 MB transfer under Vegas,
and prints the connection statistics, comparing against Reno on the
identical network.

Run:  python examples/quickstart.py
"""

from repro import RenoCC, Simulator, TCPProtocol, Topology, VegasCC
from repro.apps import BulkSink, BulkTransfer
from repro.units import kbps, mb, ms


def run_once(cc_factory, label):
    sim = Simulator()
    topo = Topology(sim)

    # Hosts on fast access LANs; routers joined by the bottleneck.
    sender_host = topo.add_host("sender")
    receiver_host = topo.add_host("receiver")
    router1 = topo.add_router("R1")
    router2 = topo.add_router("R2")
    topo.add_lan([sender_host, router1])
    topo.add_lan([router2, receiver_host])
    topo.add_link(router1, router2, bandwidth=kbps(200), delay=ms(50),
                  queue_capacity=10, name="bottleneck")
    topo.build_routes()

    # One TCP stack per host; a sink listening on the receiver.
    sender = TCPProtocol(sender_host)
    receiver = TCPProtocol(receiver_host)
    BulkSink(receiver, 7001)

    transfer = BulkTransfer(sender, "receiver", 7001, mb(1),
                            cc=cc_factory())
    sim.run(until=120.0)

    stats = transfer.conn.stats
    print(f"{label:6s}: {stats.throughput_kbps():6.1f} KB/s | "
          f"{stats.retransmitted_kb():5.1f} KB retransmitted | "
          f"{stats.coarse_timeouts} coarse timeouts | "
          f"finished at t={transfer.finish_time:.2f}s")
    return stats


def main():
    print("1 MB transfer over a 200 KB/s bottleneck "
          "(10 router buffers, ~100 ms base RTT)\n")
    reno = run_once(RenoCC, "Reno")
    vegas = run_once(VegasCC, "Vegas")
    ratio = vegas.throughput_kbps() / reno.throughput_kbps()
    print(f"\nVegas/Reno throughput ratio: {ratio:.2f}x "
          "(the paper reports 1.4-1.7x)")


if __name__ == "__main__":
    main()
