#!/usr/bin/env python3
"""Showcase of the beyond-the-paper extensions.

Runs the era's congestion-control design space on one bottleneck:

* plain Reno / NewReno / Vegas,
* SACK (§6's selective acknowledgements) alone and with Vegas,
* RED at the router, with and without ECN marking,

under a scattered-multi-loss scenario that separates the recovery
strategies, then exports the Vegas trace as JSON/CSV for external
plotting.

Run:  python examples/extensions_showcase.py
"""

import os
import random
import tempfile

from repro.apps.bulk import BulkSink, BulkTransfer
from repro.core.registry import make_cc
from repro.net.red import REDQueue
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.tcp.protocol import TCPProtocol
from repro.trace.export import export_csv, export_json
from repro.trace.graphs import build_trace_graph
from repro.trace.tracer import ConnectionTracer
from repro.units import kb, kbps, ms


def run_variant(cc_name, sack=False, ecn=False, red=False,
                drops=(5, 9, 13, 17), tracer=None):
    sim = Simulator()
    topo = Topology(sim)
    a, b = topo.add_host("A"), topo.add_host("B")
    r1, r2 = topo.add_router("R1"), topo.add_router("R2")
    topo.add_lan([a, r1])
    topo.add_lan([r2, b])
    factory = None
    if red:
        rng = random.Random(3)
        factory = lambda name: REDQueue(10, rng, min_th=2, max_th=8,
                                        ecn=ecn, weight=0.02, name=name)
    link = topo.add_link(r1, r2, bandwidth=kbps(200), delay=ms(50),
                         queue_capacity=10, queue_factory=factory)
    topo.build_routes()
    pa, pb = TCPProtocol(a), TCPProtocol(b)
    BulkSink(pb, 9000, sack=sack, ecn=ecn)
    transfer = BulkTransfer(pa, "B", 9000, kb(256), cc=make_cc(cc_name),
                            sack=sack, ecn=ecn, tracer=tracer)
    if drops:
        queue = link.channel_from(r1).queue
        original = queue.offer
        state = {"n": 0}
        dropset = set(drops)

        def lossy(packet, now):
            if now > 0.8 and packet.size > 500:
                state["n"] += 1
                if state["n"] in dropset:
                    return False
            return original(packet, now)

        queue.offer = lossy
    sim.run(until=120.0)
    return transfer.conn.stats


def main():
    print("256 KB transfer, four scattered losses, 200 KB/s bottleneck\n")
    print(f"{'variant':<22} {'time s':>7} {'timeouts':>9} {'retx KB':>8}")
    for label, kwargs in (
        ("reno", dict(cc_name="reno")),
        ("newreno", dict(cc_name="newreno")),
        ("reno + SACK", dict(cc_name="reno-sack", sack=True)),
        ("reno + RED", dict(cc_name="reno", red=True, drops=())),
        ("reno + RED + ECN", dict(cc_name="reno", red=True, ecn=True,
                                  drops=())),
        ("vegas", dict(cc_name="vegas")),
        ("vegas + SACK", dict(cc_name="vegas-sack", sack=True)),
        ("vegas (paced SS)", dict(cc_name="vegas-paced")),
    ):
        stats = run_variant(**kwargs)
        print(f"{label:<22} {stats.transfer_seconds:7.2f} "
              f"{stats.coarse_timeouts:9d} {stats.retransmitted_kb():8.1f}")

    # Export a Vegas trace for external plotting.
    tracer = ConnectionTracer("vegas-example")
    run_variant(cc_name="vegas", tracer=tracer)
    graph = build_trace_graph(tracer, name="vegas-example",
                              alpha_buffers=2, beta_buffers=4)
    outdir = tempfile.mkdtemp(prefix="repro-trace-")
    json_path = export_json(graph, os.path.join(outdir, "vegas.json"))
    csv_files = export_csv(graph, outdir)
    print(f"\nVegas trace exported: {json_path} (+{len(csv_files)} CSVs in "
          f"{outdir})")


if __name__ == "__main__":
    main()
